package hvac

import (
	"errors"
	"fmt"
	"math"

	"github.com/acyd-lab/shatter/internal/aras"
	"github.com/acyd-lab/shatter/internal/home"
)

// DayInput is one whole day of boundary conditions and observations in
// struct-of-arrays layout: per-slot weather columns plus per-occupant and
// per-appliance columns of aras.SlotsPerDay entries each. It is the HVAC
// half of the streaming layer's DayBlock — StepDay advances a full day over
// these contiguous columns without materializing 1440 per-slot StepInputs.
// All slices are read synchronously during StepDay and may be reused by the
// caller afterwards.
type DayInput struct {
	// OutdoorTempF and OutdoorCO2PPM are the day's weather columns.
	OutdoorTempF  []float64
	OutdoorCO2PPM []float64
	// BelievedZone[o][t] / BelievedAct[o][t] are the controller's per-slot
	// observation of occupant o (View semantics; falsified under attack).
	BelievedZone [][]home.ZoneID
	BelievedAct  [][]home.ActivityID
	// BelievedAppliance[a][t] is the believed status column of appliance a.
	BelievedAppliance [][]bool
	// ActualZone/ActualAct/ActualAppliance are the ground-truth columns that
	// drive the plant's CO2 mass balance and the energy metering.
	ActualZone      [][]home.ZoneID
	ActualAct       [][]home.ActivityID
	ActualAppliance [][]bool
}

// ErrNotDayBoundary is returned when StepDay is called with the simulator
// positioned mid-day; day batching only composes with whole-day advancement.
var ErrNotDayBoundary = errors.New("hvac: StepDay only at a day boundary")

func (in *DayInput) validate(house *home.House) error {
	if len(in.OutdoorTempF) != aras.SlotsPerDay || len(in.OutdoorCO2PPM) != aras.SlotsPerDay {
		return fmt.Errorf("hvac: DayInput weather columns sized %d/%d, want %d",
			len(in.OutdoorTempF), len(in.OutdoorCO2PPM), aras.SlotsPerDay)
	}
	occ, appl := len(house.Occupants), len(house.Appliances)
	if len(in.BelievedZone) != occ || len(in.BelievedAct) != occ ||
		len(in.ActualZone) != occ || len(in.ActualAct) != occ {
		return fmt.Errorf("hvac: DayInput occupant columns sized %d/%d/%d/%d, want %d",
			len(in.BelievedZone), len(in.BelievedAct), len(in.ActualZone), len(in.ActualAct), occ)
	}
	if len(in.BelievedAppliance) != appl || len(in.ActualAppliance) != appl {
		return fmt.Errorf("hvac: DayInput appliance columns sized %d/%d, want %d",
			len(in.BelievedAppliance), len(in.ActualAppliance), appl)
	}
	for o := 0; o < occ; o++ {
		if len(in.BelievedZone[o]) != aras.SlotsPerDay || len(in.BelievedAct[o]) != aras.SlotsPerDay ||
			len(in.ActualZone[o]) != aras.SlotsPerDay || len(in.ActualAct[o]) != aras.SlotsPerDay {
			return fmt.Errorf("hvac: DayInput occupant %d column not %d slots", o, aras.SlotsPerDay)
		}
	}
	for a := 0; a < appl; a++ {
		if len(in.BelievedAppliance[a]) != aras.SlotsPerDay || len(in.ActualAppliance[a]) != aras.SlotsPerDay {
			return fmt.Errorf("hvac: DayInput appliance %d column not %d slots", a, aras.SlotsPerDay)
		}
	}
	return nil
}

// dayScratch holds StepDay's reusable per-zone/per-appliance working state.
type dayScratch struct {
	heatBase []float64 // believed occupant+appliance heat, before envelope
	genBel   []float64 // believed CO2 generation (controller's qf input)
	genAct   []float64 // ground-truth CO2 generation (plant mass balance)
	genPPM   []float64 // genAct converted to ppm per slot, per zone
	fresh    []float64 // delivered fresh CFM this slot, per zone
	occupied []bool
	zonesBel []int // conditioned zones with believed occupancy, ascending
	zonesCO2 []int // conditioned zones needing a CO2 update, ascending
	onAppl   []int // actually-on appliances, ascending

	// Generic-controller fallback: per-slot StepInput views over the columns.
	believed    []OccupantObs
	actual      []OccupantObs
	believedApp []bool
	actualApp   []bool
}

func (sc *dayScratch) ensure(house *home.House) {
	nz, occ, appl := len(house.Zones), len(house.Occupants), len(house.Appliances)
	if len(sc.heatBase) != nz {
		sc.heatBase = make([]float64, nz)
		sc.genBel = make([]float64, nz)
		sc.genAct = make([]float64, nz)
		sc.genPPM = make([]float64, nz)
		sc.fresh = make([]float64, nz)
		sc.occupied = make([]bool, nz)
		sc.zonesBel = make([]int, 0, nz)
		sc.zonesCO2 = make([]int, 0, nz)
	}
	if len(sc.believed) != occ {
		sc.believed = make([]OccupantObs, occ)
		sc.actual = make([]OccupantObs, occ)
	}
	if len(sc.believedApp) != appl {
		sc.believedApp = make([]bool, appl)
		sc.actualApp = make([]bool, appl)
		sc.onAppl = make([]int, 0, appl)
	}
}

// StepDay advances the plant and the accounting by one whole day over the
// struct-of-arrays columns. Results are bit-identical to aras.SlotsPerDay
// sequential Step calls over the same data: the paper-controller fast path
// re-derives per-zone loads only at slots where some believed or actual
// column changes value (occupancy and appliance schedules are piecewise-
// constant, so a day has ~10² segments rather than 1440 independent slots)
// while keeping every floating-point accumulation in the per-slot order.
// Controllers other than SHATTERController fall back to per-slot Step calls
// over reused scratch, which is the equivalence definition itself.
func (s *Sim) StepDay(in *DayInput) error {
	if s.slot != 0 {
		return fmt.Errorf("%w (day %d slot %d)", ErrNotDayBoundary, s.day, s.slot)
	}
	if err := in.validate(s.house); err != nil {
		return err
	}
	s.scratch.ensure(s.house)
	if c, ok := s.ctrl.(*SHATTERController); ok {
		s.stepDaySHATTER(c, in)
		return nil
	}
	sc := &s.scratch
	for t := 0; t < aras.SlotsPerDay; t++ {
		for o := range sc.believed {
			sc.believed[o] = OccupantObs{Zone: in.BelievedZone[o][t], Activity: in.BelievedAct[o][t]}
			sc.actual[o] = OccupantObs{Zone: in.ActualZone[o][t], Activity: in.ActualAct[o][t]}
		}
		for a := range sc.believedApp {
			sc.believedApp[a] = in.BelievedAppliance[a][t]
			sc.actualApp[a] = in.ActualAppliance[a][t]
		}
		s.Step(StepInput{
			OutdoorTempF:      in.OutdoorTempF[t],
			OutdoorCO2PPM:     in.OutdoorCO2PPM[t],
			Believed:          sc.believed,
			BelievedAppliance: sc.believedApp,
			ActualOccupants:   sc.actual,
			ActualAppliance:   sc.actualApp,
		})
	}
	return nil
}

// stepDaySHATTER is the segment-amortized day stepper for the paper's
// controller. Within a segment — a maximal slot run where every believed and
// actual column is constant — the per-zone occupant/appliance loads, the
// active-zone sets, and the plant's CO2 generation terms are fixed, so they
// are derived once (with additions in exactly the per-slot order, keeping
// the floating-point results bit-identical) and only the weather-, CO2- and
// pricing-dependent terms run per slot.
func (s *Sim) stepDaySHATTER(c *SHATTERController, in *DayInput) {
	cp := c.Params  // the controller's planning parameters
	sp := s.params  // the plant's metering parameters
	sc := &s.scratch
	d := s.day
	// Day-boundary bookkeeping, exactly as Step's slot-0 branch.
	for zi := range s.zoneCO2 {
		if s.zoneCO2[zi] == 0 {
			s.zoneCO2[zi] = in.OutdoorCO2PPM[0]
		}
	}
	s.peakKWh = 0
	s.res.DailyCostUSD = append(s.res.DailyCostUSD, 0)
	s.res.DailyKWh = append(s.res.DailyKWh, 0)

	for t0 := 0; t0 < aras.SlotsPerDay; {
		t1 := segmentEnd(in, t0)
		// Per-zone believed loads, occupant adds then appliance adds — the
		// accumulation order SHATTERController.Plan uses.
		for zi := range sc.heatBase {
			sc.heatBase[zi], sc.genBel[zi], sc.genAct[zi], sc.fresh[zi] = 0, 0, 0, 0
			sc.occupied[zi] = false
		}
		for o := range in.BelievedZone {
			z := in.BelievedZone[o][t0]
			if !z.Conditioned() {
				continue
			}
			demo := s.house.Occupants[o].Demographics
			act := home.ActivityByID(in.BelievedAct[o][t0])
			sc.heatBase[z] += act.HeatW(demo)
			sc.genBel[z] += act.CO2Ft3PerMin(demo)
			sc.occupied[z] = true
		}
		for ai := range s.house.Appliances {
			if in.BelievedAppliance[ai][t0] {
				appl := &s.house.Appliances[ai]
				sc.heatBase[appl.Zone] += appl.HeatW()
			}
		}
		// Ground-truth CO2 generation (occupant adds in o order, as stepCO2).
		for o := range in.ActualZone {
			z := in.ActualZone[o][t0]
			if !z.Conditioned() {
				continue
			}
			demo := s.house.Occupants[o].Demographics
			act := home.ActivityByID(in.ActualAct[o][t0])
			sc.genAct[z] += act.CO2Ft3PerMin(demo)
		}
		// Active sets, ascending zone/appliance index so skipped entries
		// match the zero entries the per-slot loops skip.
		sc.zonesBel, sc.zonesCO2, sc.onAppl = sc.zonesBel[:0], sc.zonesCO2[:0], sc.onAppl[:0]
		for zi := range s.house.Zones {
			z := &s.house.Zones[zi]
			if !z.ID.Conditioned() {
				continue
			}
			if sc.occupied[zi] {
				sc.zonesBel = append(sc.zonesBel, zi)
			}
			// Zones with neither delivered fresh air nor generation keep
			// their CO2 unchanged ((1-0)·C + 0·out + 0 = C), so only zones
			// with a possible demand or positive generation need the update.
			if z.VolumeFt3 > 0 && (sc.occupied[zi] || sc.genAct[zi] != 0) {
				sc.zonesCO2 = append(sc.zonesCO2, zi)
				sc.genPPM[zi] = sc.genAct[zi] * SlotMinutes / z.VolumeFt3 * 1e6
			}
		}
		for ai := range s.house.Appliances {
			if in.ActualAppliance[ai][t0] {
				sc.onAppl = append(sc.onAppl, ai)
			}
		}

		for t := t0; t < t1; t++ {
			outT, outC := in.OutdoorTempF[t], in.OutdoorCO2PPM[t]
			var slotW float64
			for _, zi := range sc.zonesBel {
				z := &s.house.Zones[zi]
				// Plan: envelope gain on top of the segment's base load.
				heat := sc.heatBase[zi] + cp.EnvelopeUAWPerF2*z.AreaFt2*math.Max(0, outT-cp.ZoneSetpointF)
				qs := supplyAirForHeat(heat, cp.ZoneSetpointF, cp.SupplyAirTempF)
				qf := freshAirForCO2(sc.genBel[zi], z.VolumeFt3, s.zoneCO2[zi], outC, cp.CO2SetpointPPM)
				q := math.Min(math.Max(qs, qf), cp.MaxZoneCFM)
				fresh := math.Min(qf, q)
				sc.fresh[zi] = fresh
				if q <= 0 {
					continue
				}
				// Meter: Step's energy loop over the demanded zones.
				tMix := mixedAirTempF(Demand{SupplyCFM: q, FreshCFM: fresh}, outT, sp.ZoneSetpointF)
				coilW := q * math.Max(0, tMix-sp.SupplyAirTempF) * SensibleHeatFactor
				fanW := q * sp.FanWPerCFM
				slotW += coilW + fanW
				kwh := (coilW + fanW) * SlotMinutes / 60000
				s.res.CoilKWh += coilW * SlotMinutes / 60000
				s.res.FanKWh += fanW * SlotMinutes / 60000
				s.res.ZoneCoilKWh[zi] += kwh
			}
			for _, ai := range sc.onAppl {
				appl := &s.house.Appliances[ai]
				slotW += appl.PowerW
				s.res.ApplianceKWh += appl.PowerW * SlotMinutes / 60000
			}
			slotW += sp.BaseLoadW
			s.res.BaseKWh += sp.BaseLoadW * SlotMinutes / 60000

			slotKWh := slotW * SlotMinutes / 60000
			rate := s.pricing.RateAt(t, s.peakKWh)
			if s.pricing.InPeak(t) {
				s.peakKWh += slotKWh
			}
			s.res.DailyKWh[d] += slotKWh
			s.res.DailyCostUSD[d] += slotKWh * rate

			for _, zi := range sc.zonesCO2 {
				z := &s.house.Zones[zi]
				r := math.Min(sc.fresh[zi]*SlotMinutes/z.VolumeFt3, 1)
				s.zoneCO2[zi] = (1-r)*s.zoneCO2[zi] + r*outC + sc.genPPM[zi]
			}
		}
		t0 = t1
	}
	s.res.TotalCostUSD += s.res.DailyCostUSD[d]
	s.res.TotalKWh += s.res.DailyKWh[d]
	s.day++
}

// segmentEnd returns the end (exclusive) of the maximal run starting at t0
// over which every believed and actual column holds its t0 value.
func segmentEnd(in *DayInput, t0 int) int {
	t1 := aras.SlotsPerDay
	for o := range in.BelievedZone {
		t1 = runEnd(in.BelievedZone[o], t0, t1)
		t1 = runEnd(in.BelievedAct[o], t0, t1)
		t1 = runEnd(in.ActualZone[o], t0, t1)
		t1 = runEnd(in.ActualAct[o], t0, t1)
	}
	for a := range in.BelievedAppliance {
		t1 = runEnd(in.BelievedAppliance[a], t0, t1)
		t1 = runEnd(in.ActualAppliance[a], t0, t1)
	}
	return t1
}

// runEnd narrows bound to the first index in (t0, bound) where col departs
// from its t0 value.
func runEnd[T comparable](col []T, t0, bound int) int {
	v := col[t0]
	for t := t0 + 1; t < bound; t++ {
		if col[t] != v {
			return t
		}
	}
	return bound
}
