package hvac

import (
	"errors"
	"fmt"
)

// SimState is the serializable day-boundary snapshot of an incremental Sim:
// the day cursor, the plant's carried per-zone CO2 state, and the
// accounting so far. Together with the house, controller, params, and
// pricing a Sim was built from (which the snapshot deliberately does not
// carry — they are reconstructed from configuration), a restored Sim steps
// bit-identically to one that ran uninterrupted.
type SimState struct {
	// Day is the index of the next day the restored Sim steps.
	Day int `json:"day"`
	// ZoneCO2 is the carried per-zone CO2 state (ppm, indexed by ZoneID).
	ZoneCO2 []float64 `json:"zone_co2"`
	// Result is the accounting through the last completed day.
	Result Result `json:"result"`
}

// ErrMidDay is returned when a snapshot is requested between day
// boundaries; the checkpoint granularity is whole completed days.
var ErrMidDay = errors.New("hvac: snapshot only at a day boundary")

// ErrSimRestore is returned when a snapshot cannot be applied to a Sim.
var ErrSimRestore = errors.New("hvac: snapshot does not fit simulator")

// Snapshot captures the simulator's state at a day boundary. It fails
// between boundaries (the per-slot plant state and in-flight daily
// accumulators are deliberately not serialized).
func (s *Sim) Snapshot() (SimState, error) {
	if s.slot != 0 {
		return SimState{}, fmt.Errorf("%w (day %d slot %d)", ErrMidDay, s.day, s.slot)
	}
	st := SimState{Day: s.day, ZoneCO2: append([]float64(nil), s.zoneCO2...)}
	st.Result = s.res
	st.Result.DailyCostUSD = append([]float64(nil), s.res.DailyCostUSD...)
	st.Result.DailyKWh = append([]float64(nil), s.res.DailyKWh...)
	st.Result.ZoneCoilKWh = append([]float64(nil), s.res.ZoneCoilKWh...)
	return st, nil
}

// Restore positions a freshly constructed Sim at the snapshot. The target
// must be unstepped and structurally compatible (same zone count and
// controller); the snapshot's day cursor must agree with its per-day
// series, so a corrupted snapshot fails instead of restoring garbage.
func (s *Sim) Restore(st SimState) error {
	if s.day != 0 || s.slot != 0 || len(s.res.DailyKWh) != 0 {
		return fmt.Errorf("%w: target already stepped (day %d slot %d)", ErrSimRestore, s.day, s.slot)
	}
	if st.Day < 0 || len(st.Result.DailyCostUSD) != st.Day || len(st.Result.DailyKWh) != st.Day {
		return fmt.Errorf("%w: day cursor %d with %d/%d daily entries", ErrSimRestore,
			st.Day, len(st.Result.DailyCostUSD), len(st.Result.DailyKWh))
	}
	if len(st.ZoneCO2) != len(s.zoneCO2) || len(st.Result.ZoneCoilKWh) != len(s.res.ZoneCoilKWh) {
		return fmt.Errorf("%w: %d zones in snapshot, simulator has %d", ErrSimRestore, len(st.ZoneCO2), len(s.zoneCO2))
	}
	if st.Result.Controller != s.res.Controller {
		return fmt.Errorf("%w: snapshot controller %q, simulator runs %q", ErrSimRestore, st.Result.Controller, s.res.Controller)
	}
	s.day = st.Day
	copy(s.zoneCO2, st.ZoneCO2)
	s.res = st.Result
	s.res.DailyCostUSD = append([]float64(nil), st.Result.DailyCostUSD...)
	s.res.DailyKWh = append([]float64(nil), st.Result.DailyKWh...)
	s.res.ZoneCoilKWh = append([]float64(nil), st.Result.ZoneCoilKWh...)
	return nil
}
