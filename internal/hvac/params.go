// Package hvac implements the demand-controlled HVAC (DCHVAC) substrate of
// the SHATTER paper: the ventilation and temperature airflow constraints
// (Eqs 1-2), mixed-air energy accounting (Eq 3), time-of-use cost with
// battery storage (Eq 4), and the two controllers the paper compares in
// Fig 3 — the ASHRAE-style baseline and the activity-aware SHATTER
// controller.
//
// Unit conventions (DESIGN.md §3): airflow CFM, temperature °F, CO2 ppm,
// power W, energy kWh, 1-minute slots.
package hvac

import "errors"

// SensibleHeatFactor is the paper's 0.3167 W/(CFM·°F) coefficient relating
// airflow, temperature difference, and sensible heat (Eq 2; equivalently
// 1.08 BTU/(h·CFM·°F)).
const SensibleHeatFactor = 0.3167

// SlotMinutes is the control sampling time Δt in minutes.
const SlotMinutes = 1.0

// Params holds the plant and comfort parameters shared by all controllers.
type Params struct {
	// CO2SetpointPPM is the per-zone CO2 comfort bound (P^CS).
	CO2SetpointPPM float64
	// ZoneSetpointF is the zone temperature setpoint (P^TS).
	ZoneSetpointF float64
	// SupplyAirTempF is the conditioned supply air temperature (P^TSP).
	SupplyAirTempF float64
	// EnvelopeUAWPerF2 is the envelope conductance per square foot of zone
	// area, in W/(°F·ft²): heat leaking in from outdoors.
	EnvelopeUAWPerF2 float64
	// FanWPerCFM is the supply/return fan power per CFM moved.
	FanWPerCFM float64
	// BaseLoadW is the always-on miscellaneous household load
	// (refrigeration, routers) charged to every slot.
	BaseLoadW float64
	// MaxZoneCFM caps a single zone's airflow (duct limit).
	MaxZoneCFM float64
}

// DefaultParams returns the parameterisation used throughout the
// reproduction's experiments.
func DefaultParams() Params {
	return Params{
		CO2SetpointPPM:   800,
		ZoneSetpointF:    72,
		SupplyAirTempF:   55,
		EnvelopeUAWPerF2: 0.10,
		FanWPerCFM:       0.35,
		BaseLoadW:        90,
		MaxZoneCFM:       900,
	}
}

// Validate reports configuration errors a caller should not ignore.
func (p Params) Validate() error {
	if p.SupplyAirTempF >= p.ZoneSetpointF {
		return errors.New("hvac: supply air temperature must be below the zone setpoint")
	}
	if p.CO2SetpointPPM <= 450 {
		return errors.New("hvac: CO2 setpoint must exceed typical outdoor levels")
	}
	if p.MaxZoneCFM <= 0 {
		return errors.New("hvac: MaxZoneCFM must be positive")
	}
	return nil
}

// Pricing models the two-tier PG&E-style time-of-use tariff with a home
// battery that charges off-peak and serves the first BatteryKWh of each
// day's peak-window consumption at the off-peak rate (Eq 4).
type Pricing struct {
	// OffPeakUSDPerKWh and PeakUSDPerKWh are the tariff rates.
	OffPeakUSDPerKWh float64
	PeakUSDPerKWh    float64
	// PeakStartSlot and PeakEndSlot bound the daily peak window
	// [start, end) in minutes after midnight.
	PeakStartSlot int
	PeakEndSlot   int
	// BatteryKWh is P^BS, the storage charged off-peak each day.
	BatteryKWh float64
}

// DefaultPricing returns a summer PG&E-like residential TOU plan:
// 4-9 PM peak.
func DefaultPricing() Pricing {
	return Pricing{
		OffPeakUSDPerKWh: 0.33,
		PeakUSDPerKWh:    0.42,
		PeakStartSlot:    16 * 60,
		PeakEndSlot:      21 * 60,
		BatteryKWh:       3.0,
	}
}

// InPeak reports whether slot (minute of day) falls in the peak window.
func (p Pricing) InPeak(slot int) bool {
	return slot >= p.PeakStartSlot && slot < p.PeakEndSlot
}

// RateAt returns the $/kWh rate for energy consumed at the slot given the
// peak-window energy already consumed today (Eq 4's battery accounting):
// within the peak window the first BatteryKWh is served from storage at the
// off-peak rate.
func (p Pricing) RateAt(slot int, peakKWhSoFar float64) float64 {
	if !p.InPeak(slot) {
		return p.OffPeakUSDPerKWh
	}
	if peakKWhSoFar <= p.BatteryKWh {
		return p.OffPeakUSDPerKWh
	}
	return p.PeakUSDPerKWh
}
