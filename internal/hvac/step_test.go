package hvac

import (
	"reflect"
	"testing"

	"github.com/acyd-lab/shatter/internal/aras"
	"github.com/acyd-lab/shatter/internal/home"
)

// driveSteps replays a trace through the incremental Sim exactly the way a
// streaming consumer would — one StepInput per slot — and returns the
// result, plus the totals reported after the final step.
func driveSteps(t *testing.T, tr *aras.Trace, ctrl Controller, params Params, pricing Pricing) Result {
	t.Helper()
	sim, err := NewSim(tr.House, ctrl, params, pricing)
	if err != nil {
		t.Fatal(err)
	}
	view := &TraceView{Trace: tr}
	in := StepInput{
		BelievedAppliance: make([]bool, len(tr.House.Appliances)),
		ActualOccupants:   make([]OccupantObs, len(tr.House.Occupants)),
		ActualAppliance:   make([]bool, len(tr.House.Appliances)),
	}
	for d := 0; d < tr.NumDays(); d++ {
		w := tr.Weather[d]
		day := tr.Days[d]
		for s := 0; s < aras.SlotsPerDay; s++ {
			if sim.Day() != d || sim.SlotOfDay() != s {
				t.Fatalf("stepper at (%d,%d), want (%d,%d)", sim.Day(), sim.SlotOfDay(), d, s)
			}
			in.OutdoorTempF = w.TempF[s]
			in.OutdoorCO2PPM = w.CO2PPM[s]
			in.Believed = view.Occupants(d, s)
			for ai := range tr.House.Appliances {
				on := day.Appliance[ai][s]
				in.BelievedAppliance[ai] = on
				in.ActualAppliance[ai] = on
			}
			for o := range tr.House.Occupants {
				in.ActualOccupants[o] = OccupantObs{Zone: day.Zone[o][s], Activity: day.Act[o][s]}
			}
			rep := sim.Step(in)
			if rep.Day != d || rep.Slot != s {
				t.Fatalf("report at (%d,%d), want (%d,%d)", rep.Day, rep.Slot, d, s)
			}
		}
	}
	return sim.Result()
}

// TestStepMatchesSimulate pins the incremental Step path to batch Simulate
// bit-for-bit on both paper houses and both controllers.
func TestStepMatchesSimulate(t *testing.T) {
	params := DefaultParams()
	pricing := DefaultPricing()
	for _, name := range []string{"A", "B"} {
		tr := testTrace(t, name, 4)
		for _, mk := range []func() Controller{
			func() Controller { return &SHATTERController{Params: params} },
			func() Controller { return NewASHRAEController(params, tr.House) },
		} {
			batch, err := Simulate(tr, mk(), params, pricing, Options{})
			if err != nil {
				t.Fatalf("Simulate(%s): %v", name, err)
			}
			streamed := driveSteps(t, tr, mk(), params, pricing)
			if !reflect.DeepEqual(batch, streamed) {
				t.Errorf("house %s %s: streamed result differs from batch\nbatch:    %+v\nstreamed: %+v",
					name, batch.Controller, batch, streamed)
			}
		}
	}
}

// TestStepPartialDayTotals checks the Result of a stream stopped mid-day
// includes the partial day without perturbing the stepper.
func TestStepPartialDayTotals(t *testing.T) {
	tr := testTrace(t, "A", 1)
	params := DefaultParams()
	sim, err := NewSim(tr.House, &SHATTERController{Params: params}, params, DefaultPricing())
	if err != nil {
		t.Fatal(err)
	}
	view := &TraceView{Trace: tr}
	in := StepInput{
		BelievedAppliance: make([]bool, len(tr.House.Appliances)),
		ActualOccupants:   make([]OccupantObs, len(tr.House.Occupants)),
		ActualAppliance:   make([]bool, len(tr.House.Appliances)),
	}
	day := tr.Days[0]
	for s := 0; s < 100; s++ {
		in.OutdoorTempF = tr.Weather[0].TempF[s]
		in.OutdoorCO2PPM = tr.Weather[0].CO2PPM[s]
		in.Believed = view.Occupants(0, s)
		for ai := range tr.House.Appliances {
			in.BelievedAppliance[ai] = day.Appliance[ai][s]
			in.ActualAppliance[ai] = day.Appliance[ai][s]
		}
		for o := range tr.House.Occupants {
			in.ActualOccupants[o] = OccupantObs{Zone: day.Zone[o][s], Activity: day.Act[o][s]}
		}
		sim.Step(in)
	}
	res := sim.Result()
	if res.TotalKWh <= 0 || res.TotalCostUSD <= 0 {
		t.Fatalf("partial-day totals not folded in: %+v", res)
	}
	if res.TotalKWh != res.DailyKWh[0] || res.TotalCostUSD != res.DailyCostUSD[0] {
		t.Fatalf("partial-day totals mismatch daily accumulators: %+v", res)
	}
	if sim.SlotOfDay() != 100 {
		t.Fatalf("Result() disturbed the stepper: slot %d", sim.SlotOfDay())
	}
}

func TestNewSimRejectsBadParams(t *testing.T) {
	h := home.MustHouse("A")
	bad := DefaultParams()
	bad.SupplyAirTempF = bad.ZoneSetpointF + 1
	if _, err := NewSim(h, &SHATTERController{Params: bad}, bad, DefaultPricing()); err == nil {
		t.Error("invalid params accepted")
	}
}
