package hvac

import (
	"errors"

	"github.com/acyd-lab/shatter/internal/aras"
	"github.com/acyd-lab/shatter/internal/home"
)

// ErrBadDay is returned for out-of-range day indices.
var ErrBadDay = errors.New("hvac: day index out of range")

// BelievedCO2Series computes the zone-CO2 trajectory implied by a view's
// occupancy under the controller's fresh-air actuation — the measurement
// series a stealthy FDI attacker must make the CO2 sensors report so the
// Eq 14 consistency constraint holds. Indexing: series[slot][zone].
//
// Unlike Simulate (whose plant evolves from ground truth), the generation
// term here comes from the view itself: the attacker fabricates a
// self-consistent world.
func BelievedCO2Series(trace *aras.Trace, view View, ctrl Controller, params Params, day int) ([][]float64, error) {
	if day < 0 || day >= trace.NumDays() {
		return nil, ErrBadDay
	}
	house := trace.House
	w := trace.Weather[day]
	nz := len(house.Zones)
	zoneCO2 := make([]float64, nz)
	for zi := range zoneCO2 {
		zoneCO2[zi] = w.CO2PPM[0]
	}
	series := make([][]float64, aras.SlotsPerDay)
	for t := 0; t < aras.SlotsPerDay; t++ {
		cond := ZoneConditions{
			OutdoorTempF:  w.TempF[t],
			OutdoorCO2PPM: w.CO2PPM[t],
			ZoneCO2PPM:    zoneCO2,
		}
		demands := ctrl.Plan(house, view, day, t, cond)
		// Generation from the believed occupancy.
		gen := make([]float64, nz)
		for o, ob := range view.Occupants(day, t) {
			if !ob.Zone.Conditioned() {
				continue
			}
			demo := house.Occupants[o].Demographics
			act := home.ActivityByID(ob.Activity)
			gen[ob.Zone] += act.CO2Ft3PerMin(demo)
		}
		for zi := range house.Zones {
			z := house.Zones[zi]
			if !z.ID.Conditioned() || z.VolumeFt3 <= 0 {
				continue
			}
			r := 0.0
			if zi < len(demands) {
				r = demands[zi].FreshCFM * SlotMinutes / z.VolumeFt3
			}
			if r > 1 {
				r = 1
			}
			genPPM := gen[zi] * SlotMinutes / z.VolumeFt3 * 1e6
			zoneCO2[zi] = (1-r)*zoneCO2[zi] + r*w.CO2PPM[t] + genPPM
		}
		snapshot := make([]float64, nz)
		copy(snapshot, zoneCO2)
		series[t] = snapshot
	}
	return series, nil
}
