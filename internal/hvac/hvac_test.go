package hvac

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/acyd-lab/shatter/internal/aras"
	"github.com/acyd-lab/shatter/internal/home"
)

func testTrace(t *testing.T, houseName string, days int) *aras.Trace {
	t.Helper()
	h := home.MustHouse(houseName)
	tr, err := aras.Generate(h, aras.GeneratorConfig{Days: days, Seed: 1001})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestParamsValidate(t *testing.T) {
	p := DefaultParams()
	if err := p.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bad := p
	bad.SupplyAirTempF = 80
	if err := bad.Validate(); err == nil {
		t.Error("supply above setpoint should be invalid")
	}
	bad = p
	bad.CO2SetpointPPM = 400
	if err := bad.Validate(); err == nil {
		t.Error("setpoint below outdoor CO2 should be invalid")
	}
	bad = p
	bad.MaxZoneCFM = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero duct limit should be invalid")
	}
}

func TestPricingRateAt(t *testing.T) {
	pr := DefaultPricing()
	if pr.InPeak(12 * 60) {
		t.Error("noon should be off-peak")
	}
	if !pr.InPeak(18 * 60) {
		t.Error("6PM should be peak")
	}
	if got := pr.RateAt(12*60, 0); got != pr.OffPeakUSDPerKWh {
		t.Errorf("off-peak rate = %v", got)
	}
	// Peak but battery still charged → off-peak rate.
	if got := pr.RateAt(18*60, pr.BatteryKWh-0.5); got != pr.OffPeakUSDPerKWh {
		t.Errorf("battery-covered peak rate = %v", got)
	}
	// Battery exhausted → peak rate.
	if got := pr.RateAt(18*60, pr.BatteryKWh+0.1); got != pr.PeakUSDPerKWh {
		t.Errorf("post-battery peak rate = %v", got)
	}
}

func TestFreshAirForCO2(t *testing.T) {
	// No generation, already at setpoint: no fresh air needed.
	if q := freshAirForCO2(0, 1000, 800, 420, 800); q != 0 {
		t.Errorf("no-gen fresh air = %v, want 0", q)
	}
	// Generation pushing above setpoint requires positive airflow.
	q := freshAirForCO2(0.02, 1000, 800, 420, 800)
	if q <= 0 {
		t.Errorf("fresh air = %v, want > 0", q)
	}
	// More generation needs more air.
	q2 := freshAirForCO2(0.04, 1000, 800, 420, 800)
	if q2 <= q {
		t.Errorf("fresh air not monotone in generation: %v vs %v", q, q2)
	}
	// Zone already below outdoor CO2 (degenerate): nominal flush.
	if q := freshAirForCO2(0.2, 1000, 400, 420, 405); q <= 0 {
		t.Error("degenerate dilution should still flush")
	}
}

func TestSupplyAirForHeat(t *testing.T) {
	if q := supplyAirForHeat(0, 72, 55); q != 0 {
		t.Errorf("zero heat needs zero air, got %v", q)
	}
	q := supplyAirForHeat(538.39, 72, 55) // 0.3167*17*100 = 538.39 W ⇒ 100 CFM
	if math.Abs(q-100) > 1e-9 {
		t.Errorf("supply air = %v, want 100", q)
	}
	if q := supplyAirForHeat(100, 55, 72); q != 0 {
		t.Error("inverted temperatures must not produce airflow")
	}
}

func TestMixedAirTemp(t *testing.T) {
	// All return air → return temperature.
	if got := mixedAirTempF(Demand{SupplyCFM: 100, FreshCFM: 0}, 90, 72); got != 72 {
		t.Errorf("all-return mix = %v", got)
	}
	// All fresh air → outdoor temperature.
	if got := mixedAirTempF(Demand{SupplyCFM: 100, FreshCFM: 100}, 90, 72); got != 90 {
		t.Errorf("all-fresh mix = %v", got)
	}
	// Half/half.
	if got := mixedAirTempF(Demand{SupplyCFM: 100, FreshCFM: 50}, 90, 72); got != 81 {
		t.Errorf("half mix = %v, want 81", got)
	}
}

func TestSimulateEmptyTrace(t *testing.T) {
	tr := &aras.Trace{House: home.MustHouse("A")}
	ctrl := &SHATTERController{Params: DefaultParams()}
	if _, err := Simulate(tr, ctrl, DefaultParams(), DefaultPricing(), Options{}); err == nil {
		t.Error("empty trace should error")
	}
}

func TestSimulateBenignPositiveCost(t *testing.T) {
	tr := testTrace(t, "A", 3)
	params := DefaultParams()
	ctrl := &SHATTERController{Params: params}
	res, err := Simulate(tr, ctrl, params, DefaultPricing(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCostUSD <= 0 || res.TotalKWh <= 0 {
		t.Fatalf("cost=%v kWh=%v, want positive", res.TotalCostUSD, res.TotalKWh)
	}
	if len(res.DailyCostUSD) != 3 {
		t.Fatalf("daily series length %d", len(res.DailyCostUSD))
	}
	for d, c := range res.DailyCostUSD {
		if c <= 0 {
			t.Errorf("day %d cost %v", d, c)
		}
	}
	// Decomposition must sum to total energy.
	sum := res.CoilKWh + res.FanKWh + res.ApplianceKWh + res.BaseKWh
	if math.Abs(sum-res.TotalKWh) > 1e-6 {
		t.Errorf("decomposition %v != total %v", sum, res.TotalKWh)
	}
}

func TestASHRAECostlierThanSHATTER(t *testing.T) {
	// The headline Fig 3 shape: the activity-aware controller is cheaper.
	tr := testTrace(t, "A", 5)
	params := DefaultParams()
	pr := DefaultPricing()
	shatter, err := Simulate(tr, &SHATTERController{Params: params}, params, pr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ashrae, err := Simulate(tr, NewASHRAEController(params, tr.House), params, pr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if shatter.TotalCostUSD >= ashrae.TotalCostUSD {
		t.Fatalf("SHATTER (%v) should undercut ASHRAE (%v)", shatter.TotalCostUSD, ashrae.TotalCostUSD)
	}
	savings := 1 - shatter.TotalCostUSD/ashrae.TotalCostUSD
	if savings < 0.15 {
		t.Errorf("savings only %.1f%%, want a substantial gap", savings*100)
	}
	// Per-day dominance (Fig 3 shows ASHRAE above SHATTER on every day).
	for d := range shatter.DailyCostUSD {
		if shatter.DailyCostUSD[d] >= ashrae.DailyCostUSD[d] {
			t.Errorf("day %d: SHATTER %.2f !< ASHRAE %.2f", d, shatter.DailyCostUSD[d], ashrae.DailyCostUSD[d])
		}
	}
}

func TestHouseBCheaperThanHouseA(t *testing.T) {
	params := DefaultParams()
	pr := DefaultPricing()
	trA := testTrace(t, "A", 5)
	trB := testTrace(t, "B", 5)
	resA, err := Simulate(trA, &SHATTERController{Params: params}, params, pr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	resB, err := Simulate(trB, &SHATTERController{Params: params}, params, pr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if resB.TotalCostUSD >= resA.TotalCostUSD {
		t.Errorf("house B (%v) should be cheaper than house A (%v)", resB.TotalCostUSD, resA.TotalCostUSD)
	}
}

// fakeView plants a fixed observation, for controller unit tests.
type fakeView struct {
	obs   []OccupantObs
	appls map[int]bool
}

func (v *fakeView) Occupants(day, slot int) []OccupantObs { return v.obs }
func (v *fakeView) ApplianceOn(day, slot, a int) bool     { return v.appls[a] }

func TestSHATTERZeroWhenEmpty(t *testing.T) {
	h := home.MustHouse("A")
	params := DefaultParams()
	ctrl := &SHATTERController{Params: params}
	view := &fakeView{obs: []OccupantObs{
		{Zone: home.Outside, Activity: home.GoingOut},
		{Zone: home.Outside, Activity: home.GoingOut},
	}}
	cond := ZoneConditions{OutdoorTempF: 90, OutdoorCO2PPM: 420, ZoneCO2PPM: make([]float64, 5)}
	for _, d := range ctrl.Plan(h, view, 0, 0, cond) {
		if d.SupplyCFM != 0 {
			t.Fatal("empty home must get no supply air under demand control")
		}
	}
}

func TestSHATTERSuppliesOccupiedZoneOnly(t *testing.T) {
	h := home.MustHouse("A")
	params := DefaultParams()
	ctrl := &SHATTERController{Params: params}
	view := &fakeView{obs: []OccupantObs{
		{Zone: home.Kitchen, Activity: home.PreparingDinner},
		{Zone: home.Outside, Activity: home.GoingOut},
	}}
	co2 := []float64{420, 420, 420, 420, 420}
	cond := ZoneConditions{OutdoorTempF: 90, OutdoorCO2PPM: 420, ZoneCO2PPM: co2}
	demands := ctrl.Plan(h, view, 0, 0, cond)
	if demands[home.Kitchen].SupplyCFM <= 0 {
		t.Error("occupied kitchen must receive supply air")
	}
	for _, z := range []home.ZoneID{home.Bedroom, home.Livingroom, home.Bathroom} {
		if demands[z].SupplyCFM != 0 {
			t.Errorf("unoccupied %v received air", z)
		}
	}
}

func TestSHATTERActivityIntensityMatters(t *testing.T) {
	h := home.MustHouse("A")
	params := DefaultParams()
	ctrl := &SHATTERController{Params: params}
	cond := ZoneConditions{OutdoorTempF: 90, OutdoorCO2PPM: 420, ZoneCO2PPM: make([]float64, 5)}
	cook := &fakeView{obs: []OccupantObs{{Zone: home.Kitchen, Activity: home.PreparingDinner}, {Zone: home.Outside}}}
	eat := &fakeView{obs: []OccupantObs{{Zone: home.Kitchen, Activity: home.HavingLunch}, {Zone: home.Outside}}}
	qCook := ctrl.Plan(h, cook, 0, 0, cond)[home.Kitchen].SupplyCFM
	qEat := ctrl.Plan(h, eat, 0, 0, cond)[home.Kitchen].SupplyCFM
	if qCook <= qEat {
		t.Errorf("cooking (%v CFM) should demand more air than eating (%v CFM)", qCook, qEat)
	}
}

func TestSHATTERApplianceLoadMatters(t *testing.T) {
	h := home.MustHouse("A")
	params := DefaultParams()
	ctrl := &SHATTERController{Params: params}
	cond := ZoneConditions{OutdoorTempF: 90, OutdoorCO2PPM: 420, ZoneCO2PPM: make([]float64, 5)}
	base := &fakeView{obs: []OccupantObs{{Zone: home.Kitchen, Activity: home.HavingLunch}, {Zone: home.Outside}}}
	withOven := &fakeView{
		obs:   base.obs,
		appls: map[int]bool{0: true}, // oven
	}
	q0 := ctrl.Plan(h, base, 0, 0, cond)[home.Kitchen].SupplyCFM
	q1 := ctrl.Plan(h, withOven, 0, 0, cond)[home.Kitchen].SupplyCFM
	if q1 <= q0 {
		t.Errorf("oven-on demand (%v) should exceed oven-off (%v)", q1, q0)
	}
}

func TestASHRAEAreaTermAlwaysOnWhenHome(t *testing.T) {
	h := home.MustHouse("A")
	params := DefaultParams()
	ctrl := NewASHRAEController(params, h)
	cond := ZoneConditions{OutdoorTempF: 90, OutdoorCO2PPM: 420, ZoneCO2PPM: make([]float64, 5)}
	// One occupant in the bedroom: ASHRAE still ventilates every zone.
	view := &fakeView{obs: []OccupantObs{{Zone: home.Bedroom, Activity: home.Sleeping}, {Zone: home.Outside}}}
	demands := ctrl.Plan(h, view, 0, 0, cond)
	for _, z := range []home.ZoneID{home.Bedroom, home.Livingroom, home.Kitchen, home.Bathroom} {
		if demands[z].FreshCFM <= 0 {
			t.Errorf("ASHRAE should ventilate %v while home is occupied", z)
		}
	}
	// Nobody home: no air at all.
	away := &fakeView{obs: []OccupantObs{{Zone: home.Outside}, {Zone: home.Outside}}}
	for _, d := range ctrl.Plan(h, away, 0, 0, cond) {
		if d.SupplyCFM != 0 {
			t.Error("ASHRAE unoccupied mode should shut off")
		}
	}
}

func TestCostModelOrderings(t *testing.T) {
	h := home.MustHouse("A")
	m := NewCostModel(h, DefaultParams(), DefaultPricing())
	// Kitchen with its most intense activity should be the most expensive
	// zone (the case-study premise).
	costs := map[home.ZoneID]float64{}
	for _, z := range []home.ZoneID{home.Bedroom, home.Livingroom, home.Kitchen, home.Bathroom} {
		costs[z] = m.OccupantSlotCost(0, z, home.MostIntenseActivityInZone(z), 12*60, 84)
	}
	for _, z := range []home.ZoneID{home.Bedroom, home.Bathroom} {
		if costs[home.Kitchen] <= costs[z] {
			t.Errorf("kitchen cost %v not above %v cost %v", costs[home.Kitchen], z, costs[z])
		}
	}
	// Outside costs nothing.
	if m.OccupantSlotCost(0, home.Outside, home.GoingOut, 12*60, 84) != 0 {
		t.Error("outside should cost 0")
	}
	// Peak slot costs more than off-peak.
	offPeak := m.OccupantSlotCost(0, home.Kitchen, home.PreparingDinner, 12*60, 84)
	peak := m.OccupantSlotCost(0, home.Kitchen, home.PreparingDinner, 18*60, 84)
	if peak <= offPeak {
		t.Errorf("peak %v should exceed off-peak %v", peak, offPeak)
	}
}

func TestApplianceSlotCost(t *testing.T) {
	h := home.MustHouse("A")
	m := NewCostModel(h, DefaultParams(), DefaultPricing())
	oven := m.ApplianceSlotCost(0, 18*60, 84)
	stereo := m.ApplianceSlotCost(6, 18*60, 84)
	if oven <= stereo {
		t.Errorf("oven (%v) should cost more than stereo (%v)", oven, stereo)
	}
	if oven <= 0 {
		t.Error("appliance cost must be positive")
	}
}

// Property: the plant CO2 never drops below the outdoor level during
// benign simulation (dilution cannot undershoot the source).
func TestPropertyCO2AboveOutdoor(t *testing.T) {
	tr := testTrace(t, "A", 1)
	params := DefaultParams()
	w := tr.Weather[0]
	view := &TraceView{Trace: tr}
	sim, err := NewSim(tr.House, &SHATTERController{Params: params}, params, DefaultPricing())
	if err != nil {
		t.Fatal(err)
	}
	day := tr.Days[0]
	in := StepInput{
		BelievedAppliance: make([]bool, len(tr.House.Appliances)),
		ActualOccupants:   make([]OccupantObs, len(tr.House.Occupants)),
		ActualAppliance:   make([]bool, len(tr.House.Appliances)),
	}
	for tslot := 0; tslot < aras.SlotsPerDay; tslot++ {
		in.OutdoorTempF = w.TempF[tslot]
		in.OutdoorCO2PPM = w.CO2PPM[tslot]
		in.Believed = view.Occupants(0, tslot)
		for ai := range tr.House.Appliances {
			on := day.Appliance[ai][tslot]
			in.BelievedAppliance[ai] = on
			in.ActualAppliance[ai] = on
		}
		for o := range tr.House.Occupants {
			in.ActualOccupants[o] = OccupantObs{Zone: day.Zone[o][tslot], Activity: day.Act[o][tslot]}
		}
		sim.Step(in)
		for zi, c := range sim.ZoneCO2() {
			if home.ZoneID(zi).Conditioned() && c < 380 {
				t.Fatalf("slot %d zone %d CO2 %v below plausible floor", tslot, zi, c)
			}
		}
	}
}

// Property: fresh airflow required is monotone non-decreasing in the
// generation rate for arbitrary plausible states.
func TestPropertyFreshAirMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		g1 := float64(seed%100) / 1000
		g2 := g1 + 0.01
		q1 := freshAirForCO2(g1, 1000, 700, 420, 800)
		q2 := freshAirForCO2(g2, 1000, 700, 420, 800)
		return q2 >= q1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
