package hvac

import (
	"math"

	"github.com/acyd-lab/shatter/internal/aras"
	"github.com/acyd-lab/shatter/internal/home"
)

// StepInput is one control slot's worth of boundary conditions and
// observations — everything the incremental simulator needs to advance a
// single minute. The Believed fields feed the controller (under attack they
// are falsified); the Actual fields drive the plant's CO2 mass balance and
// the electrical energy accounting. All slices are read synchronously during
// Step and may be reused by the caller afterwards.
type StepInput struct {
	// OutdoorTempF and OutdoorCO2PPM are the slot's weather (P^OT, P^OC).
	OutdoorTempF  float64
	OutdoorCO2PPM float64
	// Believed is the controller's per-occupant observation (View semantics).
	Believed []OccupantObs
	// BelievedAppliance[a] is the believed status of appliance a (forged
	// δ^D statuses included under attack).
	BelievedAppliance []bool
	// ActualOccupants is the ground-truth occupancy/activity per occupant,
	// which generates the plant's real CO2.
	ActualOccupants []OccupantObs
	// ActualAppliance[a] is the true electrical state of appliance a
	// (trace status plus really-triggered appliances).
	ActualAppliance []bool
}

// SlotReport is Step's per-slot account — the "controller action" event the
// streaming layer publishes. Demands is the controller's airflow decision
// per zone and is valid until the next Step call.
type SlotReport struct {
	Day, Slot int
	Demands   []Demand
	KWh       float64
	CostUSD   float64
}

// Sim is the incremental plant/controller simulator: one Step call advances
// one minute slot, carrying the zone CO2 state, the daily peak-window
// battery accounting, and the cost/energy totals across calls. The batch
// Simulate is a loop over Step, so the two produce bit-identical results on
// the same inputs. A Sim is not safe for concurrent use.
type Sim struct {
	house   *home.House
	ctrl    Controller
	params  Params
	pricing Pricing

	res     Result
	zoneCO2 []float64
	gen     []float64
	day     int
	slot    int // slot-of-day, 0..SlotsPerDay-1
	peakKWh float64
	view    stepView
	// curIn stages the in-flight StepInput for the controller view; pointing
	// the view at this field instead of the Step parameter keeps the
	// parameter on the stack (zero allocations per slot).
	curIn StepInput
	// scratch is StepDay's reusable working state.
	scratch dayScratch
}

// NewSim validates the parameters and returns a simulator positioned at
// slot 0 of day 0.
func NewSim(house *home.House, ctrl Controller, params Params, pricing Pricing) (*Sim, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	s := &Sim{
		house:   house,
		ctrl:    ctrl,
		params:  params,
		pricing: pricing,
		res: Result{
			Controller:  ctrl.Name(),
			ZoneCoilKWh: make([]float64, len(house.Zones)),
		},
		zoneCO2: make([]float64, len(house.Zones)),
		gen:     make([]float64, len(house.Zones)),
	}
	s.view.sim = s
	return s, nil
}

// Day returns the day index the next Step call advances.
func (s *Sim) Day() int { return s.day }

// SlotOfDay returns the minute-of-day the next Step call advances.
func (s *Sim) SlotOfDay() int { return s.slot }

// stepView adapts the current StepInput to the View interface the
// controllers consume; the day/slot arguments are ignored because the view
// always serves the in-flight slot.
type stepView struct {
	sim *Sim
	in  *StepInput
}

var _ View = (*stepView)(nil)

func (v *stepView) Occupants(day, slot int) []OccupantObs { return v.in.Believed }
func (v *stepView) ApplianceOn(day, slot, appliance int) bool {
	return v.in.BelievedAppliance[appliance]
}

// Step advances the plant and the accounting by one minute slot. Day
// boundaries are implicit: every aras.SlotsPerDay calls start a new day,
// resetting the battery's peak-window state and opening a fresh daily
// accumulator.
func (s *Sim) Step(in StepInput) SlotReport {
	if s.slot == 0 {
		// Day boundary: zones that have never been conditioned start at the
		// day's outdoor CO2 level; the battery recharges overnight.
		for zi := range s.zoneCO2 {
			if s.zoneCO2[zi] == 0 {
				s.zoneCO2[zi] = in.OutdoorCO2PPM
			}
		}
		s.peakKWh = 0
		s.res.DailyCostUSD = append(s.res.DailyCostUSD, 0)
		s.res.DailyKWh = append(s.res.DailyKWh, 0)
	}
	d, t := s.day, s.slot
	cond := ZoneConditions{
		OutdoorTempF:  in.OutdoorTempF,
		OutdoorCO2PPM: in.OutdoorCO2PPM,
		ZoneCO2PPM:    s.zoneCO2,
	}
	s.curIn = in
	s.view.in = &s.curIn
	demands := s.ctrl.Plan(s.house, &s.view, d, t, cond)
	s.view.in = nil
	// Energy: coil on the fresh/return mix (Eq 3) plus fan power.
	var slotW float64
	for zi, dem := range demands {
		if dem.SupplyCFM <= 0 {
			continue
		}
		tMix := mixedAirTempF(dem, in.OutdoorTempF, s.params.ZoneSetpointF)
		coilW := dem.SupplyCFM * math.Max(0, tMix-s.params.SupplyAirTempF) * SensibleHeatFactor
		fanW := dem.SupplyCFM * s.params.FanWPerCFM
		slotW += coilW + fanW
		kwh := (coilW + fanW) * SlotMinutes / 60000
		s.res.CoilKWh += coilW * SlotMinutes / 60000
		s.res.FanKWh += fanW * SlotMinutes / 60000
		s.res.ZoneCoilKWh[zi] += kwh
	}
	// Appliance and base loads (actual draw).
	for ai, appl := range s.house.Appliances {
		if in.ActualAppliance[ai] {
			slotW += appl.PowerW
			s.res.ApplianceKWh += appl.PowerW * SlotMinutes / 60000
		}
	}
	slotW += s.params.BaseLoadW
	s.res.BaseKWh += s.params.BaseLoadW * SlotMinutes / 60000

	slotKWh := slotW * SlotMinutes / 60000
	rate := s.pricing.RateAt(t, s.peakKWh)
	if s.pricing.InPeak(t) {
		s.peakKWh += slotKWh
	}
	slotCost := slotKWh * rate
	s.res.DailyKWh[d] += slotKWh
	s.res.DailyCostUSD[d] += slotCost

	// Plant CO2 mass balance from ground-truth occupancy and the delivered
	// fresh air (Eq 1).
	s.stepCO2(in, demands)

	rep := SlotReport{Day: d, Slot: t, Demands: demands, KWh: slotKWh, CostUSD: slotCost}
	s.slot++
	if s.slot == aras.SlotsPerDay {
		s.res.TotalCostUSD += s.res.DailyCostUSD[d]
		s.res.TotalKWh += s.res.DailyKWh[d]
		s.slot = 0
		s.day++
	}
	return rep
}

// stepCO2 advances each conditioned zone's CO2 with the Eq 1 mass balance
// using ground-truth generation and delivered fresh airflow.
func (s *Sim) stepCO2(in StepInput, demands []Demand) {
	for i := range s.gen {
		s.gen[i] = 0
	}
	for o, ob := range in.ActualOccupants {
		if !ob.Zone.Conditioned() {
			continue
		}
		demo := s.house.Occupants[o].Demographics
		act := home.ActivityByID(ob.Activity)
		s.gen[ob.Zone] += act.CO2Ft3PerMin(demo)
	}
	for zi := range s.house.Zones {
		z := s.house.Zones[zi]
		if !z.ID.Conditioned() || z.VolumeFt3 <= 0 {
			continue
		}
		r := 0.0
		if zi < len(demands) {
			r = demands[zi].FreshCFM * SlotMinutes / z.VolumeFt3
		}
		r = math.Min(r, 1)
		genPPM := s.gen[zi] * SlotMinutes / z.VolumeFt3 * 1e6
		s.zoneCO2[zi] = (1-r)*s.zoneCO2[zi] + r*in.OutdoorCO2PPM + genPPM
	}
}

// ZoneCO2 exposes the plant's current per-zone CO2 state (indexed by
// ZoneID) — the measurement series a streaming deployment would publish
// from its IAQ sensors. The returned slice is the simulator's live state;
// callers must not modify it.
func (s *Sim) ZoneCO2() []float64 { return s.zoneCO2 }

// Result returns the accounting so far as an independent snapshot: the
// per-day and per-zone series are cloned, so a mid-stream sample stays
// consistent while stepping continues. A partial in-flight day (streams
// that stop between day boundaries) is folded into the totals without
// disturbing the simulator's state, so the result of a whole-day stream is
// bit-identical to batch Simulate.
func (s *Sim) Result() Result {
	res := s.res
	res.DailyCostUSD = append([]float64(nil), res.DailyCostUSD...)
	res.DailyKWh = append([]float64(nil), res.DailyKWh...)
	res.ZoneCoilKWh = append([]float64(nil), res.ZoneCoilKWh...)
	if s.slot != 0 {
		res.TotalCostUSD += res.DailyCostUSD[s.day]
		res.TotalKWh += res.DailyKWh[s.day]
	}
	return res
}
