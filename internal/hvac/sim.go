package hvac

import (
	"errors"
	"math"

	"github.com/acyd-lab/shatter/internal/aras"
	"github.com/acyd-lab/shatter/internal/home"
)

// TraceView is the benign View: the controller's beliefs equal ground truth.
// The observation buffer is reused across Occupants calls, so an instance
// must not be shared between concurrent simulations.
type TraceView struct {
	Trace *aras.Trace

	obs []OccupantObs
}

var _ View = (*TraceView)(nil)

// Occupants implements View. The returned slice is valid until the next
// call.
func (v *TraceView) Occupants(day, slot int) []OccupantObs {
	d := v.Trace.Days[day]
	if cap(v.obs) < len(d.Zone) {
		v.obs = make([]OccupantObs, len(d.Zone))
	}
	obs := v.obs[:len(d.Zone)]
	for o := range d.Zone {
		obs[o] = OccupantObs{Zone: d.Zone[o][slot], Activity: d.Act[o][slot]}
	}
	return obs
}

// ApplianceOn implements View.
func (v *TraceView) ApplianceOn(day, slot, appliance int) bool {
	return v.Trace.Days[day].Appliance[appliance][slot]
}

// Options configures a simulation run.
type Options struct {
	// View supplies controller beliefs; nil means the benign TraceView.
	View View
	// ActualApplianceOn reports the true status of an appliance (actual
	// electrical draw). Nil means the trace's recorded statuses. Attacks
	// that really trigger appliances override this.
	ActualApplianceOn func(day, slot, appliance int) bool
}

// Result aggregates a simulation.
type Result struct {
	Controller string
	// DailyCostUSD and DailyKWh are per-day totals.
	DailyCostUSD []float64
	DailyKWh     []float64
	// Energy decomposition over the whole run.
	CoilKWh      float64
	FanKWh       float64
	ApplianceKWh float64
	BaseKWh      float64
	// ZoneCoilKWh attributes coil+fan energy to zones.
	ZoneCoilKWh []float64
	// TotalCostUSD and TotalKWh are run totals.
	TotalCostUSD float64
	TotalKWh     float64
}

// ErrEmptyTrace is returned when the trace has no days.
var ErrEmptyTrace = errors.New("hvac: empty trace")

// Simulate runs the controller over the full trace and returns cost/energy
// accounting per Eqs 3-4. The plant CO2 state evolves from ground-truth
// occupancy and the delivered fresh airflow; the controller acts on the
// (possibly falsified) View.
//
// Simulate is the batch shell over the incremental Sim.Step core: it builds
// one StepInput per slot from the trace and the view and drains the stepper,
// so batch and streaming execution are equivalent by construction.
func Simulate(trace *aras.Trace, ctrl Controller, params Params, pricing Pricing, opts Options) (Result, error) {
	if trace.NumDays() == 0 {
		return Result{}, ErrEmptyTrace
	}
	sim, err := NewSim(trace.House, ctrl, params, pricing)
	if err != nil {
		return Result{}, err
	}
	view := opts.View
	if view == nil {
		view = &TraceView{Trace: trace}
	}
	actualAppl := opts.ActualApplianceOn
	if actualAppl == nil {
		actualAppl = func(day, slot, a int) bool {
			return trace.Days[day].Appliance[a][slot]
		}
	}
	house := trace.House
	in := StepInput{
		BelievedAppliance: make([]bool, len(house.Appliances)),
		ActualOccupants:   make([]OccupantObs, len(house.Occupants)),
		ActualAppliance:   make([]bool, len(house.Appliances)),
	}
	for d := 0; d < trace.NumDays(); d++ {
		w := trace.Weather[d]
		day := trace.Days[d]
		for t := 0; t < aras.SlotsPerDay; t++ {
			in.OutdoorTempF = w.TempF[t]
			in.OutdoorCO2PPM = w.CO2PPM[t]
			in.Believed = view.Occupants(d, t)
			for ai := range house.Appliances {
				in.BelievedAppliance[ai] = view.ApplianceOn(d, t, ai)
				in.ActualAppliance[ai] = actualAppl(d, t, ai)
			}
			for o := range house.Occupants {
				in.ActualOccupants[o] = OccupantObs{Zone: day.Zone[o][t], Activity: day.Act[o][t]}
			}
			sim.Step(in)
		}
	}
	return sim.Result(), nil
}

// mixedAirTempF returns the AHU mixing-chamber temperature for a demand:
// the fresh fraction at outdoor temperature, the rest at return (zone
// setpoint) temperature.
func mixedAirTempF(dem Demand, outdoorF, returnF float64) float64 {
	if dem.SupplyCFM <= 0 {
		return returnF
	}
	frac := dem.FreshCFM / dem.SupplyCFM
	frac = math.Max(0, math.Min(1, frac))
	return frac*outdoorF + (1-frac)*returnF
}

// CostModel precomputes per-slot marginal costs the attack optimiser uses
// as its additive surrogate objective: the $ cost of one believed occupant
// conducting an activity in a zone for one minute, and of one triggered
// appliance running for one minute. Exact attack costs are re-evaluated
// with Simulate after scheduling (Section V's case-study accounting).
type CostModel struct {
	house   *home.House
	params  Params
	pricing Pricing
}

// NewCostModel builds a CostModel.
func NewCostModel(house *home.House, params Params, pricing Pricing) *CostModel {
	return &CostModel{house: house, params: params, pricing: pricing}
}

// OccupantSlotCost returns the marginal per-minute USD cost of a believed
// occupant in zone z performing activity act at slot (minute-of-day),
// assuming the zone is otherwise unconditioned (so the envelope load
// activates with the occupant). Outdoor temperature defaults to the design
// summer mean when weather is nil.
func (m *CostModel) OccupantSlotCost(occupant int, z home.ZoneID, act home.ActivityID, slot int, outdoorF float64) float64 {
	if !z.Conditioned() {
		return 0
	}
	p := m.params
	zone := m.house.Zone(z)
	demo := m.house.Occupants[occupant].Demographics
	a := home.ActivityByID(act)
	heat := a.HeatW(demo) + p.EnvelopeUAWPerF2*zone.AreaFt2*math.Max(0, outdoorF-p.ZoneSetpointF)
	// The activity-appliance relationship: a reported activity carries its
	// habitual appliances' status (δ^D in the attack vector), so their heat
	// becomes believed cooling load.
	for _, ai := range m.house.AppliancesForActivity(act) {
		if m.house.Appliances[ai].Zone == z {
			heat += m.house.Appliances[ai].HeatW()
		}
	}
	qs := supplyAirForHeat(heat, p.ZoneSetpointF, p.SupplyAirTempF)
	// Steady-state fresh air to hold the setpoint against this occupant's
	// generation: r·(set − out) = genPPM.
	genPPM := a.CO2Ft3PerMin(demo) * SlotMinutes / zone.VolumeFt3 * 1e6
	qf := 0.0
	if den := p.CO2SetpointPPM - 420; den > 0 {
		qf = genPPM / den * zone.VolumeFt3 / SlotMinutes
	}
	q := math.Min(math.Max(qs, qf), p.MaxZoneCFM)
	fresh := math.Min(qf, q)
	tMix := mixedAirTempF(Demand{SupplyCFM: q, FreshCFM: fresh}, outdoorF, p.ZoneSetpointF)
	watts := q*math.Max(0, tMix-p.SupplyAirTempF)*SensibleHeatFactor + q*p.FanWPerCFM
	kwh := watts * SlotMinutes / 60000
	return kwh * m.rateApprox(slot)
}

// ApplianceSlotCost returns the marginal per-minute USD cost of appliance
// ai running at slot: its electrical draw plus the induced coil load in its
// (conditioned) zone.
func (m *CostModel) ApplianceSlotCost(ai, slot int, outdoorF float64) float64 {
	p := m.params
	appl := m.house.Appliances[ai]
	watts := appl.PowerW
	if appl.Zone.Conditioned() {
		qs := supplyAirForHeat(appl.HeatW(), p.ZoneSetpointF, p.SupplyAirTempF)
		qs = math.Min(qs, p.MaxZoneCFM)
		tMix := mixedAirTempF(Demand{SupplyCFM: qs}, outdoorF, p.ZoneSetpointF)
		watts += qs*math.Max(0, tMix-p.SupplyAirTempF)*SensibleHeatFactor + qs*p.FanWPerCFM
	}
	kwh := watts * SlotMinutes / 60000
	return kwh * m.rateApprox(slot)
}

// rateApprox prices a slot ignoring battery state (the surrogate does not
// track cumulative peak energy; Simulate re-applies Eq 4 exactly).
func (m *CostModel) rateApprox(slot int) float64 {
	if m.pricing.InPeak(slot) {
		return m.pricing.PeakUSDPerKWh
	}
	return m.pricing.OffPeakUSDPerKWh
}
