package hvac

import (
	"math"

	"github.com/acyd-lab/shatter/internal/home"
)

// OccupantObs is what the control system believes about one occupant at a
// slot: where they are and what they are doing. Under attack these beliefs
// come from falsified sensor measurements rather than ground truth.
type OccupantObs struct {
	Zone     home.ZoneID
	Activity home.ActivityID
}

// View supplies the controller's sensor-derived beliefs for each slot of
// each day. The benign view reads the ground-truth trace; attack views
// overlay falsified occupancy, activity, and appliance status.
type View interface {
	// Occupants returns the believed observation per occupant. The returned
	// slice may be reused by the view on the next call — callers must not
	// retain it across slots.
	Occupants(day, slot int) []OccupantObs
	// ApplianceOn returns the believed status of appliance a.
	ApplianceOn(day, slot, appliance int) bool
}

// ZoneConditions carries the per-slot boundary conditions a controller
// plans against.
type ZoneConditions struct {
	OutdoorTempF  float64
	OutdoorCO2PPM float64
	// ZoneCO2PPM is the current measured CO2 per zone.
	ZoneCO2PPM []float64
}

// Demand is a controller's airflow decision for one zone at one slot.
type Demand struct {
	// SupplyCFM is the total supply airflow Q (Eq 2).
	SupplyCFM float64
	// FreshCFM is the fresh (outdoor) portion of the supply (Eq 1);
	// the remainder recirculates return air.
	FreshCFM float64
}

// Controller plans per-zone airflow from believed occupancy/activity and
// appliance state.
type Controller interface {
	// Name identifies the controller in experiment output.
	Name() string
	// Plan returns one Demand per zone (indexed by ZoneID; Outside's entry
	// is zero).
	Plan(house *home.House, view View, day, slot int, cond ZoneConditions) []Demand
}

// freshAirForCO2 solves the Eq 1 mass balance for the minimum fresh airflow
// holding next-slot CO2 at or below the setpoint:
//
//	C_next = (1−r)·C + r·C_out + gen·Δt/V,  r = Qf·Δt/V
//
// gen is in ft³/min of CO2; concentrations in ppm (ft³ CO2 per 10⁶ ft³ air).
func freshAirForCO2(genFt3PerMin, volumeFt3, zoneCO2, outCO2, setpoint float64) float64 {
	if volumeFt3 <= 0 {
		return 0
	}
	genPPM := genFt3PerMin * SlotMinutes / volumeFt3 * 1e6
	// Without ventilation the zone would reach:
	unforced := zoneCO2 + genPPM
	if unforced <= setpoint {
		return 0
	}
	// Need r such that (1−r)·C + r·out + genPPM = setpoint.
	den := zoneCO2 - outCO2
	if den <= 0 {
		// Outdoor air cannot dilute below outdoor levels; flush at a nominal
		// one air change per hour equivalent.
		return volumeFt3 / 60
	}
	r := (unforced - setpoint) / den
	r = math.Min(r, 1)
	return r * volumeFt3 / SlotMinutes
}

// supplyAirForHeat solves Eq 2 for the supply airflow that removes the
// sensible heat gain at the design temperature difference.
func supplyAirForHeat(heatW, zoneSetF, supplyF float64) float64 {
	dt := zoneSetF - supplyF
	if dt <= 0 || heatW <= 0 {
		return 0
	}
	return heatW / (SensibleHeatFactor * dt)
}

// SHATTERController is the paper's proposed activity-aware DCHVAC
// controller (Section II): per-activity metabolic rates, live
// appliance-status load, and per-occupant tracking. It conditions a zone
// only while the believed occupancy is non-zero.
//
// The controller reuses internal per-zone scratch buffers across Plan calls
// (a simulation issues one call per minute-slot), so a single instance must
// not be shared between concurrently running simulations.
type SHATTERController struct {
	Params Params

	// Per-zone scratch reused across Plan calls.
	demands  []Demand
	heat     []float64
	gen      []float64
	occupied []bool
}

var _ Controller = (*SHATTERController)(nil)

// Name implements Controller.
func (c *SHATTERController) Name() string { return "SHATTER" }

// Plan implements Controller. The returned demand slice is valid until the
// next Plan call.
func (c *SHATTERController) Plan(house *home.House, view View, day, slot int, cond ZoneConditions) []Demand {
	p := c.Params
	nz := len(house.Zones)
	if cap(c.demands) < nz {
		c.demands = make([]Demand, nz)
		c.heat = make([]float64, nz)
		c.gen = make([]float64, nz)
		c.occupied = make([]bool, nz)
	}
	demands, heat, gen, occupied := c.demands[:nz], c.heat[:nz], c.gen[:nz], c.occupied[:nz]
	for zi := 0; zi < nz; zi++ {
		demands[zi] = Demand{}
		heat[zi], gen[zi], occupied[zi] = 0, 0, false
	}
	obs := view.Occupants(day, slot)
	// Per-zone occupant heat and CO2 generation from activity profiles.
	for o, ob := range obs {
		if !ob.Zone.Conditioned() {
			continue
		}
		demo := house.Occupants[o].Demographics
		act := home.ActivityByID(ob.Activity)
		heat[ob.Zone] += act.HeatW(demo)
		gen[ob.Zone] += act.CO2Ft3PerMin(demo)
		occupied[ob.Zone] = true
	}
	// Appliance heat by installed zone, from believed status.
	for ai, appl := range house.Appliances {
		if view.ApplianceOn(day, slot, ai) {
			heat[appl.Zone] += appl.HeatW()
		}
	}
	for zi := range house.Zones {
		z := house.Zones[zi]
		if !z.ID.Conditioned() || !occupied[zi] {
			continue // demand-controlled setback: no occupants, no supply
		}
		// Envelope gain while conditioning the zone.
		heat[zi] += p.EnvelopeUAWPerF2 * z.AreaFt2 * math.Max(0, cond.OutdoorTempF-p.ZoneSetpointF)
		qs := supplyAirForHeat(heat[zi], p.ZoneSetpointF, p.SupplyAirTempF)
		qf := freshAirForCO2(gen[zi], z.VolumeFt3, cond.ZoneCO2PPM[zi], cond.OutdoorCO2PPM, p.CO2SetpointPPM)
		q := math.Min(math.Max(qs, qf), p.MaxZoneCFM)
		demands[zi] = Demand{SupplyCFM: q, FreshCFM: math.Min(qf, q)}
	}
	return demands
}

// ASHRAEController is the BIoTA-style baseline (Fig 3): ventilation by
// fixed per-person and per-area rates, cooling sized for an average design
// load rather than the instantaneous activity/appliance state. It
// over-supplies during low-intensity occupancy, which is exactly the
// inefficiency the paper's Fig 3 quantifies.
type ASHRAEController struct {
	Params Params
	// PersonCFM is the ASHRAE 62.2-style per-person fresh-air rate.
	PersonCFM float64
	// AreaCFMPerFt2 is the per-floor-area fresh-air rate applied to every
	// conditioned zone whenever anyone is home.
	AreaCFMPerFt2 float64
	// DesignMET is the average metabolic intensity assumed per occupant.
	DesignMET float64
	// DesignApplianceW is the average appliance load assumed per zone
	// (BIoTA's "fixed load at every control cycle", Table I).
	DesignApplianceW map[home.ZoneID]float64

	// Per-zone scratch reused across Plan calls.
	demands []Demand
	counts  []int
}

var _ Controller = (*ASHRAEController)(nil)

// NewASHRAEController returns the baseline with standard rates and a design
// appliance load derived from the house's appliance fit-out (40% duty
// estimate — historical-average sizing). Like SHATTERController, an
// instance reuses scratch buffers across Plan calls and must not be shared
// between concurrent simulations.
func NewASHRAEController(params Params, house *home.House) *ASHRAEController {
	design := make(map[home.ZoneID]float64)
	for _, appl := range house.Appliances {
		design[appl.Zone] += appl.HeatW() * 0.20
	}
	return &ASHRAEController{
		Params:           params,
		PersonCFM:        7.5,
		AreaCFMPerFt2:    0.06,
		DesignMET:        1.4,
		DesignApplianceW: design,
	}
}

// Name implements Controller.
func (c *ASHRAEController) Name() string { return "ASHRAE" }

// Plan implements Controller. The returned demand slice is valid until the
// next Plan call.
func (c *ASHRAEController) Plan(house *home.House, view View, day, slot int, cond ZoneConditions) []Demand {
	p := c.Params
	nz := len(house.Zones)
	if cap(c.demands) < nz {
		c.demands = make([]Demand, nz)
		c.counts = make([]int, nz)
	}
	demands, counts := c.demands[:nz], c.counts[:nz]
	for zi := 0; zi < nz; zi++ {
		demands[zi] = Demand{}
		counts[zi] = 0
	}
	obs := view.Occupants(day, slot)
	anyoneHome := false
	for _, ob := range obs {
		if ob.Zone.Conditioned() {
			counts[ob.Zone]++
			anyoneHome = true
		}
	}
	if !anyoneHome {
		return demands
	}
	for zi := range house.Zones {
		z := house.Zones[zi]
		if !z.ID.Conditioned() {
			continue
		}
		// Ventilation: people + area terms, area term on whenever occupied
		// mode is active (someone home), people term from counted heads.
		qf := c.PersonCFM*float64(counts[zi]) + c.AreaCFMPerFt2*z.AreaFt2
		// Cooling: design load = average occupant heat + average appliance
		// load + design-day envelope, independent of actual activities.
		heat := float64(counts[zi])*c.DesignMET*home.SensibleHeatWPerMET +
			c.DesignApplianceW[z.ID] +
			p.EnvelopeUAWPerF2*z.AreaFt2*math.Max(0, cond.OutdoorTempF-p.ZoneSetpointF)
		qs := supplyAirForHeat(heat, p.ZoneSetpointF, p.SupplyAirTempF)
		q := math.Min(math.Max(qs, qf), p.MaxZoneCFM)
		demands[zi] = Demand{SupplyCFM: q, FreshCFM: math.Min(qf, q)}
	}
	return demands
}
