package hvac

import (
	"errors"
	"reflect"
	"testing"

	"github.com/acyd-lab/shatter/internal/aras"
	"github.com/acyd-lab/shatter/internal/home"
)

// dayInputFor builds the SoA columns for one trace day with independently
// suppliable believed columns (the attacked case feeds falsified ones).
func dayInputFor(tr *aras.Trace, d int, believed aras.Day, believedAppl [][]bool) *DayInput {
	return &DayInput{
		OutdoorTempF:      tr.Weather[d].TempF,
		OutdoorCO2PPM:     tr.Weather[d].CO2PPM,
		BelievedZone:      believed.Zone,
		BelievedAct:       believed.Act,
		BelievedAppliance: believedAppl,
		ActualZone:        tr.Days[d].Zone,
		ActualAct:         tr.Days[d].Act,
		ActualAppliance:   tr.Days[d].Appliance,
	}
}

// stepSlots drives sim through one trace day with per-slot Step calls — the
// equivalence reference for StepDay.
func stepSlots(sim *Sim, tr *aras.Trace, d int, believed aras.Day, believedAppl [][]bool) {
	occ, appl := len(tr.House.Occupants), len(tr.House.Appliances)
	in := StepInput{
		Believed:          make([]OccupantObs, occ),
		BelievedAppliance: make([]bool, appl),
		ActualOccupants:   make([]OccupantObs, occ),
		ActualAppliance:   make([]bool, appl),
	}
	for t := 0; t < aras.SlotsPerDay; t++ {
		in.OutdoorTempF = tr.Weather[d].TempF[t]
		in.OutdoorCO2PPM = tr.Weather[d].CO2PPM[t]
		for o := 0; o < occ; o++ {
			in.Believed[o] = OccupantObs{Zone: believed.Zone[o][t], Activity: believed.Act[o][t]}
			in.ActualOccupants[o] = OccupantObs{Zone: tr.Days[d].Zone[o][t], Activity: tr.Days[d].Act[o][t]}
		}
		for a := 0; a < appl; a++ {
			in.BelievedAppliance[a] = believedAppl[a][t]
			in.ActualAppliance[a] = tr.Days[d].Appliance[a][t]
		}
		sim.Step(in)
	}
}

// falsifiedView derives believed columns that diverge from the truth —
// occupant 0 is reported in the living room mid-day and a forged appliance
// status is flipped on — so the segmented believed/actual split is exercised
// with genuinely different column sets.
func falsifiedView(tr *aras.Trace, d int) (aras.Day, [][]bool) {
	day := aras.NewDay(len(tr.House.Occupants), len(tr.House.Appliances))
	for o := range day.Zone {
		copy(day.Zone[o], tr.Days[d].Zone[o])
		copy(day.Act[o], tr.Days[d].Act[o])
	}
	appl := make([][]bool, len(tr.House.Appliances))
	for a := range appl {
		appl[a] = append([]bool(nil), tr.Days[d].Appliance[a]...)
	}
	var living home.ZoneID
	for zi := range tr.House.Zones {
		if tr.House.Zones[zi].ID.Conditioned() {
			living = tr.House.Zones[zi].ID
			break
		}
	}
	for t := 600; t < 900; t++ {
		day.Zone[0][t] = living
		day.Act[0][t] = home.WatchingTV
	}
	if len(appl) > 0 {
		for t := 650; t < 700; t++ {
			appl[0][t] = true
		}
	}
	return day, appl
}

// TestStepDayMatchesStep pins the segment-amortized day stepper to the
// per-slot reference bit-for-bit: benign and falsified views on both paper
// houses for the SHATTER fast path, plus the ASHRAE fallback.
func TestStepDayMatchesStep(t *testing.T) {
	params := DefaultParams()
	pricing := DefaultPricing()
	for _, name := range []string{"A", "B"} {
		house := home.MustHouse(name)
		tr, err := aras.Generate(house, aras.GeneratorConfig{Days: 4, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		for _, tc := range []struct {
			label     string
			ctrl      func() Controller
			falsified bool
		}{
			{"shatter-benign", func() Controller { return &SHATTERController{Params: params} }, false},
			{"shatter-attacked", func() Controller { return &SHATTERController{Params: params} }, true},
			{"ashrae-benign", func() Controller { return NewASHRAEController(params, house) }, false},
		} {
			slotSim, err := NewSim(house, tc.ctrl(), params, pricing)
			if err != nil {
				t.Fatal(err)
			}
			daySim, err := NewSim(house, tc.ctrl(), params, pricing)
			if err != nil {
				t.Fatal(err)
			}
			for d := 0; d < tr.NumDays(); d++ {
				believed, believedAppl := tr.Days[d], tr.Days[d].Appliance
				if tc.falsified {
					believed, believedAppl = falsifiedView(tr, d)
				}
				stepSlots(slotSim, tr, d, believed, believedAppl)
				if err := daySim.StepDay(dayInputFor(tr, d, believed, believedAppl)); err != nil {
					t.Fatal(err)
				}
				// Plant state must track slot-for-slot across day boundaries,
				// not just converge at the end.
				if !reflect.DeepEqual(slotSim.ZoneCO2(), daySim.ZoneCO2()) {
					t.Fatalf("house %s %s day %d: zone CO2 diverged\nslot: %v\nday:  %v",
						name, tc.label, d, slotSim.ZoneCO2(), daySim.ZoneCO2())
				}
			}
			want, got := slotSim.Result(), daySim.Result()
			if !reflect.DeepEqual(want, got) {
				t.Errorf("house %s %s: StepDay result differs from Step\nslot: %+v\nday:  %+v", name, tc.label, want, got)
			}
			if slotSim.Day() != daySim.Day() || daySim.SlotOfDay() != 0 {
				t.Errorf("house %s %s: cursor (%d,%d) vs (%d,%d)", name, tc.label,
					slotSim.Day(), slotSim.SlotOfDay(), daySim.Day(), daySim.SlotOfDay())
			}
		}
	}
}

// TestStepDayMidDayRejected locks the day-boundary precondition.
func TestStepDayMidDayRejected(t *testing.T) {
	house := home.MustHouse("A")
	tr, err := aras.Generate(house, aras.GeneratorConfig{Days: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSim(house, &SHATTERController{Params: DefaultParams()}, DefaultParams(), DefaultPricing())
	if err != nil {
		t.Fatal(err)
	}
	occ, appl := len(house.Occupants), len(house.Appliances)
	in := StepInput{
		Believed:          make([]OccupantObs, occ),
		BelievedAppliance: make([]bool, appl),
		ActualOccupants:   make([]OccupantObs, occ),
		ActualAppliance:   make([]bool, appl),
	}
	sim.Step(in)
	err = sim.StepDay(dayInputFor(tr, 0, tr.Days[0], tr.Days[0].Appliance))
	if !errors.Is(err, ErrNotDayBoundary) {
		t.Fatalf("mid-day StepDay: got %v, want ErrNotDayBoundary", err)
	}
}
