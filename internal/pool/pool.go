// Package pool is the bounded worker pool the experiment engine, the
// attack planner, and the streaming fleet share: Run executes independent
// cells across a fixed number of goroutines with first-error-wins
// semantics. Keeping one implementation keeps the subtle
// cancellation/first-error bookkeeping identical everywhere it is relied
// on for determinism.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Width resolves the effective worker count Run and RunIndexed use for a
// w-wide pool over n cells: w <= 0 selects one worker per available CPU,
// and the result is clamped to [1, max(n, 1)]. Callers that allocate
// per-worker scratch size it with Width so the scratch matches the pool.
func Width(w, n int) int {
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes fn(i) for every index in [0, n) across at most w workers.
// w <= 0 selects one worker per available CPU; the width is then clamped
// to [1, n], and w == 1 forces fully sequential execution for
// reproducibility checks. Cells must be independent and write their
// results only to their own index, which makes the output deterministic
// regardless of pool width — parallel and sequential runs produce
// identical results.
//
// Error handling is first-error-wins with cancellation: once any cell
// fails, no new cells start, and the error reported is the one from the
// lowest-indexed failed cell that ran.
func Run(w, n int, fn func(i int) error) error {
	return RunIndexed(w, n, func(_, i int) error { return fn(i) })
}

// RunIndexed is Run with the worker index (in [0, Width(w, n))) passed to
// fn, so cells can address per-worker scratch — reusable buffers each
// goroutine owns for its whole run — without synchronisation. The
// determinism contract is unchanged: scratch must only carry state that
// does not alter cell results (workspaces, grow-on-demand tables).
func RunIndexed(w, n int, fn func(worker, i int) error) error {
	w = Width(w, n)
	if w <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		next     atomic.Int64
		failed   atomic.Bool
		mu       sync.Mutex
		firstErr error
		errIdx   = n
	)
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := fn(worker, i); err != nil {
					mu.Lock()
					if i < errIdx {
						errIdx, firstErr = i, err
					}
					mu.Unlock()
					failed.Store(true)
				}
			}
		}(g)
	}
	wg.Wait()
	return firstErr
}
