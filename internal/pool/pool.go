// Package pool is the bounded worker pool the experiment engine and the
// streaming fleet share: Run executes independent cells across a fixed
// number of goroutines with first-error-wins semantics. Keeping one
// implementation keeps the subtle cancellation/first-error bookkeeping
// identical everywhere it is relied on for determinism.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Run executes fn(i) for every index in [0, n) across at most w workers.
// w <= 0 selects one worker per available CPU; the width is then clamped
// to [1, n], and w == 1 forces fully sequential execution for
// reproducibility checks. Cells must be independent and write their
// results only to their own index, which makes the output deterministic
// regardless of pool width — parallel and sequential runs produce
// identical results.
//
// Error handling is first-error-wins with cancellation: once any cell
// fails, no new cells start, and the error reported is the one from the
// lowest-indexed failed cell that ran.
func Run(w, n int, fn func(i int) error) error {
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		next     atomic.Int64
		failed   atomic.Bool
		mu       sync.Mutex
		firstErr error
		errIdx   = n
	)
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if i < errIdx {
						errIdx, firstErr = i, err
					}
					mu.Unlock()
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
