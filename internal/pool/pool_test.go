package pool

import (
	"errors"
	"sync/atomic"
	"testing"
)

// TestRunCoversAllCells checks every index runs exactly once for the whole
// width-resolution range (explicit, sequential, and 0 = per-CPU).
func TestRunCoversAllCells(t *testing.T) {
	for _, w := range []int{0, 1, 3, 64} {
		const n = 37
		var ran [n]atomic.Int64
		if err := Run(w, n, func(i int) error {
			ran[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("w=%d: %v", w, err)
		}
		for i := range ran {
			if got := ran[i].Load(); got != 1 {
				t.Fatalf("w=%d: cell %d ran %d times", w, i, got)
			}
		}
	}
}

// TestRunFirstErrorWins checks the lowest-indexed failure that ran is the
// one reported, sequentially and in parallel.
func TestRunFirstErrorWins(t *testing.T) {
	e5, e20 := errors.New("e5"), errors.New("e20")
	for _, w := range []int{1, 8} {
		err := Run(w, 32, func(i int) error {
			switch i {
			case 5:
				return e5
			case 20:
				return e20
			}
			return nil
		})
		// Sequentially, cell 20 never runs; in parallel either may run, but
		// the lowest-indexed failure must win.
		if !errors.Is(err, e5) {
			t.Errorf("w=%d: got %v, want e5", w, err)
		}
	}
}

// TestRunSequentialStopsAtError checks w=1 cancels immediately.
func TestRunSequentialStopsAtError(t *testing.T) {
	boom := errors.New("boom")
	var ran int
	err := Run(1, 10, func(i int) error {
		ran++
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || ran != 4 {
		t.Fatalf("err=%v ran=%d, want boom after 4 cells", err, ran)
	}
}
