// Quickstart: generate a smart-home activity trace, train the anomaly
// detection model, synthesise a stealthy SHATTER attack schedule, and
// report its impact — the whole pipeline in one page.
package main

import (
	"fmt"
	"log"

	shatter "github.com/acyd-lab/shatter"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. A house and two weeks of synthetic ARAS-style behaviour. Homes come
	// from the scenario registry: "A"/"B" are the paper's ARAS pair, and
	// "studio", "family4", "nightshift", or "shared8" (or a procedural
	// shatter.SynthScenario(12, 4, seed)) swap in richer worlds without
	// changing anything below.
	spec, ok := shatter.GetScenario("A")
	if !ok {
		return fmt.Errorf("scenario A not registered")
	}
	trace, err := spec.Generate(14, 42)
	if err != nil {
		return err
	}
	house := trace.House
	fmt.Printf("generated %d days for house %s (%d occupants, %d appliances)\n",
		trace.NumDays(), house.Name, len(house.Occupants), len(house.Appliances))

	// 2. Train the K-Means convex-hull ADM on the first 10 days.
	train, err := trace.SubTrace(0, 10)
	if err != nil {
		return err
	}
	model, err := shatter.TrainADM(train, shatter.DefaultADMConfig(shatter.KMeans))
	if err != nil {
		return err
	}
	fmt.Printf("ADM trained: %d cluster hulls covering %.0f (arrival×stay) area\n",
		model.Stats().Clusters, model.Stats().TotalArea)

	// 3. Synthesise the windowed SHATTER attack schedule with full access.
	params, pricing := shatter.DefaultHVACParams(), shatter.DefaultPricing()
	planner := shatter.NewPlanner(trace, model, params, pricing, shatter.FullCapability(house), 10)
	plan, err := planner.PlanSHATTER()
	if err != nil {
		return err
	}
	fmt.Printf("attack schedule: %d falsified occupant-slots, %d infeasible windows\n",
		plan.InjectedSlots(trace), plan.InfeasibleWindows)

	// 4. Add the appliance-triggering stage (Algorithm 1).
	triggered := shatter.TriggerAppliances(trace, plan, model, shatter.FullCapability(house))
	fmt.Printf("appliance triggering: %d appliance-minutes really switched on\n", triggered)

	// 5. Evaluate against the activity-aware controller.
	ctrl := shatter.NewSHATTERController(params)
	impact, err := shatter.EvaluateImpact(trace, plan, model, ctrl, params, pricing, shatter.EvalOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("benign bill  : $%.2f\n", impact.Benign.TotalCostUSD)
	fmt.Printf("attacked bill: $%.2f (+$%.2f, detection rate %.1f%%)\n",
		impact.Attacked.TotalCostUSD, impact.ExtraCostUSD, impact.DetectionRate*100)
	return nil
}
