// Energytheft compares the three attack strategies of the paper — the
// BIoTA-style rule-aware baseline, the greedy Algorithm-2 schedule, and the
// windowed SHATTER schedule — on the same month, with and without
// defender-side day-abort, reproducing the Table V workload.
package main

import (
	"fmt"
	"log"

	shatter "github.com/acyd-lab/shatter"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	house, err := shatter.NewHouse("A")
	if err != nil {
		return err
	}
	trace, err := shatter.Generate(house, shatter.GeneratorConfig{Days: 14, Seed: 7})
	if err != nil {
		return err
	}
	train, err := trace.SubTrace(0, 10)
	if err != nil {
		return err
	}
	params, pricing := shatter.DefaultHVACParams(), shatter.DefaultPricing()
	ctrl := shatter.NewSHATTERController(params)
	cap := shatter.FullCapability(house)

	// Defender: DBSCAN (the paper's pick after Table V); attacker knows it.
	cfg := shatter.DefaultADMConfig(shatter.DBSCAN)
	cfg.MinPts, cfg.Eps = 3, 30 // scaled to the 10-day training window
	defender, err := shatter.TrainADM(train, cfg)
	if err != nil {
		return err
	}

	planner := shatter.NewPlanner(trace, defender, params, pricing, cap, 10)
	type strategy struct {
		name string
		plan func() (*shatter.Plan, error)
	}
	for _, st := range []strategy{
		{"BIoTA ", planner.PlanBIoTA},
		{"Greedy ", planner.PlanGreedy},
		{"SHATTER", planner.PlanSHATTER},
	} {
		plan, err := st.plan()
		if err != nil {
			return err
		}
		shatter.TriggerAppliances(trace, plan, defender, cap)
		raw, err := shatter.EvaluateImpact(trace, plan, defender, ctrl, params, pricing, shatter.EvalOptions{})
		if err != nil {
			return err
		}
		aborted, err := shatter.EvaluateImpact(trace, plan, defender, ctrl, params, pricing,
			shatter.EvalOptions{AbortDetectedDays: true})
		if err != nil {
			return err
		}
		fmt.Printf("%s: raw $%.2f  after-defense $%.2f  detection %.0f%%  (benign $%.2f)\n",
			st.name, raw.Attacked.TotalCostUSD, aborted.Attacked.TotalCostUSD,
			raw.DetectionRate*100, raw.Benign.TotalCostUSD)
	}
	return nil
}
