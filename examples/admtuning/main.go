// Admtuning sweeps the ADM hyperparameters with the three internal validity
// indices of Fig 4 (Davies-Bouldin, Silhouette, Calinski-Harabasz) and
// shows the Fig 6 geometry contrast between DBSCAN and K-Means hulls.
package main

import (
	"fmt"
	"log"

	shatter "github.com/acyd-lab/shatter"
	"github.com/acyd-lab/shatter/internal/adm"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	house, err := shatter.NewHouse("A")
	if err != nil {
		return err
	}
	trace, err := shatter.Generate(house, shatter.GeneratorConfig{Days: 20, Seed: 11})
	if err != nil {
		return err
	}

	fmt.Println("DBSCAN minPts sweep (occupant 0, eps=20):")
	fmt.Printf("%8s %10s %10s %12s\n", "minPts", "DBI↓", "Silh↑", "CHI↑")
	for _, p := range adm.TuneDBSCAN(trace, 0, 20, 5, 40, 5) {
		fmt.Printf("%8d %10.3f %10.3f %12.1f\n", p.Hyperparameter, p.DaviesBouldin, p.Silhouette, p.CalinskiHara)
	}

	fmt.Println("\nK-Means k sweep (occupant 0):")
	fmt.Printf("%8s %10s %10s %12s\n", "k", "DBI↓", "Silh↑", "CHI↑")
	for _, p := range adm.TuneKMeans(trace, 0, 3, 2, 32, 3) {
		fmt.Printf("%8d %10.3f %10.3f %12.1f\n", p.Hyperparameter, p.DaviesBouldin, p.Silhouette, p.CalinskiHara)
	}

	// Fig 6 contrast: train both backends and compare hull geometry.
	fmt.Println("\nlearned decision-region geometry (Fig 6):")
	for _, alg := range []shatter.ADMAlgorithm{shatter.DBSCAN, shatter.KMeans} {
		cfg := shatter.DefaultADMConfig(alg)
		if alg == shatter.DBSCAN {
			cfg.MinPts, cfg.Eps = 6, 25
		}
		model, err := shatter.TrainADM(trace, cfg)
		if err != nil {
			return err
		}
		st := model.Stats()
		fmt.Printf("  %-8v: %3d hulls, area %8.0f, noise pruned %d\n",
			alg, st.Clusters, st.TotalArea, st.NoisePruned)
	}
	return nil
}
