// Mitmbroker runs the Section VI prototype-testbed demonstration end to
// end over real loopback TCP: the scaled thermal plant, its identified
// dynamics, an MQTT-style broker, and a man-in-the-middle proxy that
// rewrites the sensor node's load reports into the "everyone is cooking"
// story while the kitchen appliance bulbs are really triggered.
package main

import (
	"fmt"
	"log"

	"github.com/acyd-lab/shatter/internal/testbed"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := testbed.DefaultConfig()
	sim, err := testbed.New(cfg)
	if err != nil {
		return err
	}
	model, err := testbed.Identify(sim)
	if err != nil {
		return err
	}
	fmt.Printf("dynamics identified: %.2f%% held-out error (paper: <2%%)\n", model.FitErrorPct)

	// Benign hour: Alice in the bathroom then living room, Bob napping.
	actual := []float64{cfg.LEDPowerW, 0, 0, cfg.LEDPowerW} // bedroom + bathroom bulbs
	benign, err := runRig(sim, model, nil, actual, actual)
	if err != nil {
		return err
	}
	fmt.Printf("benign hour over the broker: %.1f Wh\n", benign)

	// Attacked hour: the MITM proxy forges every load report into a 15 W
	// kitchen story; the triggered kitchen bulbs really draw power.
	attackedActual := actual
	attackedActual[2] += 3 * cfg.LEDPowerW // triggered kitchen appliance bulbs
	attacked, err := runRig(sim, model, testbed.KitchenForgeRewrite(5*cfg.LEDPowerW), attackedActual, actual)
	if err != nil {
		return err
	}
	fmt.Printf("attacked hour over the broker: %.1f Wh (+%.1f%%)\n",
		attacked, (attacked/benign-1)*100)

	// The offline validation run (no sockets) for comparison.
	val, err := testbed.Validate(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("offline validation: +%.1f%% energy, occupied-zone excursion %.1f°F\n",
		val.IncreasePct, val.Attacked.MaxRiseF)
	return nil
}

// runRig runs 60 supervisory minutes through broker + optional MITM.
func runRig(sim *testbed.Simulator, model *testbed.DynamicsModel, rewrite func(m mqttMessage) mqttMessage, actual, published []float64) (float64, error) {
	rig, err := testbed.NewRig(sim, model, adapt(rewrite))
	if err != nil {
		return 0, err
	}
	defer rig.Close()
	sim.Reset()
	var total float64
	for minute := 0; minute < 60; minute++ {
		wh, err := rig.Tick(actual, published)
		if err != nil {
			return 0, err
		}
		total += wh
	}
	return total, nil
}

// mqttMessage aliases the transport message so the adapter below can keep
// the example self-contained.
type mqttMessage = testbed.Message

func adapt(f func(mqttMessage) mqttMessage) func(mqttMessage) mqttMessage { return f }
