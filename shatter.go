// Package shatter is the public API of the SHATTER reproduction — a
// control- and defense-aware attack-analytics framework for activity-driven
// smart-home systems (Haque et al., DSN 2023).
//
// The package re-exports the stable surface of the internal modules:
//
//   - the declarative scenario layer (a registry of named home archetypes
//     plus a procedural generator for arbitrary worlds),
//   - dataset generation (ARAS-style synthetic activity traces),
//   - the DCHVAC controllers and plant simulation,
//   - the clustering + convex-hull anomaly detection model (ADM),
//   - the attack planner (BIoTA baseline, greedy Algorithm 2, SHATTER
//     windowed schedule) and the appliance-triggering stage (Algorithm 1),
//   - the experiment suite that regenerates every table and figure of the
//     paper's evaluation and sweeps the full pipeline over arbitrary
//     scenarios, and
//   - the scaled prototype testbed with its MQTT-style transport, and
//   - the sharded fleet service: a long-running runtime that multiplexes
//     very large home fleets over small worker pools, with an MQTT control
//     plane, live metrics, and checkpointed drain/rehydrate.
//
// See examples/quickstart for a five-minute tour.
package shatter

import (
	"github.com/acyd-lab/shatter/internal/adm"
	"github.com/acyd-lab/shatter/internal/aras"
	"github.com/acyd-lab/shatter/internal/attack"
	"github.com/acyd-lab/shatter/internal/core"
	"github.com/acyd-lab/shatter/internal/fleetd"
	"github.com/acyd-lab/shatter/internal/home"
	"github.com/acyd-lab/shatter/internal/hvac"
	"github.com/acyd-lab/shatter/internal/mqtt"
	"github.com/acyd-lab/shatter/internal/scenario"
	"github.com/acyd-lab/shatter/internal/stream"
	"github.com/acyd-lab/shatter/internal/testbed"
)

// Domain model.
type (
	// House is a smart-home configuration (zones, occupants, appliances).
	House = home.House
	// ZoneID identifies a zone; Outside is zone 0.
	ZoneID = home.ZoneID
	// ActivityID identifies one of the 27 ARAS activities.
	ActivityID = home.ActivityID
	// Trace is a multi-day activity/occupancy recording.
	Trace = aras.Trace
	// Episode is one contiguous stay of an occupant in a zone.
	Episode = aras.Episode
	// GeneratorConfig parameterises synthetic trace generation.
	GeneratorConfig = aras.GeneratorConfig
)

// Zone constants re-exported for examples and tools.
const (
	Outside    = home.Outside
	Bedroom    = home.Bedroom
	Livingroom = home.Livingroom
	Kitchen    = home.Kitchen
	Bathroom   = home.Bathroom
)

// SlotsPerDay is the number of 1-minute control slots per day.
const SlotsPerDay = aras.SlotsPerDay

// NewHouse returns one of the two ARAS-style houses, "A" or "B" — a compat
// wrapper over the canonical blueprints. Other homes come from the scenario
// registry (GetScenario) or BuildHouse.
func NewHouse(name string) (*House, error) { return home.NewHouse(name) }

// Generate produces a synthetic activity trace for the house.
func Generate(h *House, cfg GeneratorConfig) (*Trace, error) { return aras.Generate(h, cfg) }

// Scenario layer: declarative world models.
type (
	// Scenario is a declarative home description: zones, occupants with
	// schedule profiles, appliances, and generator/controller configuration.
	Scenario = scenario.Spec
	// ScenarioZone declares one conditioned zone of a scenario.
	ScenarioZone = scenario.ZoneSpec
	// ScenarioOccupant declares one resident of a scenario.
	ScenarioOccupant = scenario.OccupantSpec
	// ScheduleProfile is an occupant's daily-routine archetype.
	ScheduleProfile = aras.ScheduleProfile
	// HouseBlueprint is the home layer's declarative construction form.
	HouseBlueprint = home.Blueprint
	// SweepPoint is one scenario's end-to-end pipeline measurement.
	SweepPoint = core.SweepPoint
)

// RegisterScenario validates a scenario and adds it to the named registry.
func RegisterScenario(sp Scenario) error { return scenario.Register(sp) }

// GetScenario returns a registered scenario by ID. Builtins include the
// paper's ARAS pair ("A", "B") plus "studio", "family4", "nightshift", and
// "shared8".
func GetScenario(id string) (Scenario, bool) { return scenario.Get(id) }

// ScenarioIDs lists all registered scenario IDs in registration order.
func ScenarioIDs() []string { return scenario.IDs() }

// SynthScenario procedurally generates a home with the given conditioned
// zone and occupant counts, deterministically from the seed.
func SynthScenario(zones, occupants int, seed uint64) Scenario {
	return scenario.Synth(zones, occupants, seed)
}

// BuildHouse assembles a House from a declarative blueprint.
func BuildHouse(bp HouseBlueprint) (*House, error) { return home.BuildHouse(bp) }

// HVAC control.
type (
	// HVACParams configures the DCHVAC plant and comfort bounds.
	HVACParams = hvac.Params
	// Pricing is the two-tier TOU tariff with battery storage.
	Pricing = hvac.Pricing
	// Controller plans per-zone airflow from believed occupancy.
	Controller = hvac.Controller
	// SimResult is a plant simulation's cost/energy accounting.
	SimResult = hvac.Result
)

// DefaultHVACParams returns the reproduction's plant parameters.
func DefaultHVACParams() HVACParams { return hvac.DefaultParams() }

// DefaultPricing returns the PG&E-style TOU tariff.
func DefaultPricing() Pricing { return hvac.DefaultPricing() }

// NewSHATTERController returns the paper's activity-aware controller.
// Controllers reuse internal scratch buffers across control slots, so a
// single instance must not drive concurrent simulations — create one
// controller per simulation goroutine.
func NewSHATTERController(p HVACParams) Controller { return &hvac.SHATTERController{Params: p} }

// NewASHRAEController returns the Fig 3 baseline controller. Like
// NewSHATTERController, one instance must not drive concurrent simulations.
func NewASHRAEController(p HVACParams, h *House) Controller { return hvac.NewASHRAEController(p, h) }

// Simulate runs a controller over a trace with benign beliefs. For
// concurrent simulations, give each call its own controller instance.
func Simulate(tr *Trace, ctrl Controller, p HVACParams, pr Pricing) (SimResult, error) {
	return hvac.Simulate(tr, ctrl, p, pr, hvac.Options{})
}

// Anomaly detection.
type (
	// ADMAlgorithm selects DBSCAN or K-Means clustering.
	ADMAlgorithm = adm.Algorithm
	// ADMConfig parameterises ADM training.
	ADMConfig = adm.Config
	// ADM is a trained anomaly detection model.
	ADM = adm.Model
)

// The two ADM backends.
const (
	DBSCAN = adm.DBSCAN
	KMeans = adm.KMeans
)

// DefaultADMConfig returns the paper's hyperparameters for a backend.
func DefaultADMConfig(alg ADMAlgorithm) ADMConfig { return adm.DefaultConfig(alg) }

// TrainADM fits an anomaly detection model on a trace.
func TrainADM(tr *Trace, cfg ADMConfig) (*ADM, error) { return adm.Train(tr, cfg) }

// Attack analytics.
type (
	// Capability models the attacker's sensor/appliance/occupant access.
	Capability = attack.Capability
	// Planner synthesises attack schedules.
	Planner = attack.Planner
	// Plan is a falsified-measurement campaign.
	Plan = attack.Plan
	// Impact is an attack campaign's evaluated outcome.
	Impact = attack.Impact
	// EvalOptions configures impact evaluation.
	EvalOptions = attack.EvalOptions
)

// FullCapability grants access to everything in the house.
func FullCapability(h *House) Capability { return attack.Full(h) }

// NewPlanner builds an attack planner. The model is the attacker's ADM
// estimate; windowLen is the optimisation horizon I (paper: 10).
func NewPlanner(tr *Trace, model *ADM, p HVACParams, pr Pricing, cap Capability, windowLen int) *Planner {
	return &attack.Planner{
		Trace:     tr,
		Model:     model,
		Cost:      hvac.NewCostModel(tr.House, p, pr),
		Cap:       cap,
		WindowLen: windowLen,
	}
}

// TriggerAppliances runs Algorithm 1 over a plan, really switching on
// accessible appliances in stealthy windows. Returns triggered slots.
func TriggerAppliances(tr *Trace, plan *Plan, model *ADM, cap Capability) int {
	return attack.TriggerAppliances(tr, plan, model, cap)
}

// EvaluateImpact scores a plan against a defender's ADM and the plant.
func EvaluateImpact(tr *Trace, plan *Plan, defender *ADM, ctrl Controller, p HVACParams, pr Pricing, opts EvalOptions) (Impact, error) {
	return attack.EvaluateImpact(tr, plan, defender, ctrl, p, pr, opts)
}

// Experiment suite.
type (
	// Suite regenerates every table and figure of the paper.
	Suite = core.Suite
	// SuiteConfig parameterises a reproduction run.
	SuiteConfig = core.SuiteConfig
)

// DefaultSuiteConfig mirrors the paper's setup (30 days, horizon 10).
func DefaultSuiteConfig() SuiteConfig { return core.DefaultSuiteConfig() }

// NewSuite generates the configured scenarios' datasets (the paper's ARAS
// pair by default) and returns the experiment runner. Suite.ScenarioSweep
// runs the full pipeline over further registry or procedural scenarios.
func NewSuite(cfg SuiteConfig) (*Suite, error) { return core.NewSuite(cfg) }

// Streaming runtime: the incremental event core, online detection, live
// injection, and the fleet runner. Every streaming path is equivalence-
// locked to its batch counterpart (replaying a house reproduces the batch
// trace, controller costs, and ADM verdicts byte-for-byte).
type (
	// StreamSlot is one minute of a home's sensor traffic.
	StreamSlot = stream.Slot
	// StreamSource produces a home's slot frames in order.
	StreamSource = stream.Source
	// StreamHome is one home's incremental pipeline (injector → online
	// detector → HVAC stepper).
	StreamHome = stream.Home
	// StreamHomeConfig wires one home's streaming pipeline.
	StreamHomeConfig = stream.HomeConfig
	// StreamHomeResult aggregates one home's streamed run.
	StreamHomeResult = stream.HomeResult
	// StreamOptions configures Suite.Stream.
	StreamOptions = core.StreamOptions
	// FleetJob is one home's entry in a fleet run.
	FleetJob = stream.Job
	// FleetOptions configures a fleet run (workers, MQTT transport).
	FleetOptions = stream.FleetOptions
	// FleetResult is a fleet run's per-home results plus aggregate stats.
	FleetResult = stream.FleetResult
	// FleetStats is a fleet run's aggregate accounting and throughput.
	FleetStats = stream.FleetStats
	// OnlineDetector scores an occupancy stream episode-by-episode online.
	OnlineDetector = adm.Detector
	// Verdict is the online detector's judgement of one closed episode.
	Verdict = adm.Verdict
)

// NewStreamHome builds the incremental runtime for one home.
func NewStreamHome(cfg StreamHomeConfig) (*StreamHome, error) { return stream.NewHome(cfg) }

// NewGeneratorStream adapts an incremental trace generator into a slot
// source, emitting a home's frames minute-by-minute without materializing
// the trace.
func NewGeneratorStream(id string, h *House, cfg GeneratorConfig) (StreamSource, error) {
	g, err := aras.NewGenerator(h, cfg)
	if err != nil {
		return nil, err
	}
	return stream.NewGeneratorSource(id, g), nil
}

// NewTraceStream replays a materialized trace as slot frames.
func NewTraceStream(id string, tr *Trace) StreamSource { return stream.NewTraceSource(id, tr) }

// NewInjector builds the live attack injector for a home's plan — the
// streaming counterpart of the batch attack view.
func NewInjector(h *House, plan *Plan) (*stream.Injector, error) { return stream.NewInjector(h, plan) }

// NewOnlineDetector wraps a trained ADM for online, per-episode use.
func NewOnlineDetector(m *ADM) *OnlineDetector { return adm.NewDetector(m) }

// RunFleet drives every job's pipeline to end-of-stream across a bounded
// worker pool, optionally over an MQTT broker.
func RunFleet(jobs []FleetJob, opts FleetOptions) (FleetResult, error) {
	return stream.RunFleet(jobs, opts)
}

// Fleet service: the long-running sharded runtime. Where RunFleet is a
// batch call that owns its goroutines for the duration, the fleet service
// multiplexes thousands of homes over a small worker pool per shard,
// admits and removes homes while running, pauses, drains, and rehydrates
// shards from checkpoints, and speaks MQTT on its admin and metrics
// topics. Shard results stay byte-identical to RunFleet over the same
// jobs.
type (
	// FleetService is the running sharded fleet runtime.
	FleetService = fleetd.Service
	// FleetServiceConfig wires shards, the control-plane broker, and the
	// metrics cadence.
	FleetServiceConfig = fleetd.Config
	// FleetShardOptions tunes one shard's scheduler (workers, admission
	// window, quantum, supervision, frame transport).
	FleetShardOptions = fleetd.ShardOptions
	// FleetAdmin is an MQTT control-plane client for a running service.
	FleetAdmin = fleetd.Admin
	// FleetAddRequest names homes for admission in the scenario grammar.
	FleetAddRequest = fleetd.AddRequest
	// FleetSnapshot is one published metrics document.
	FleetSnapshot = fleetd.Snapshot
)

// NewFleetService starts a fleet service wired to a suite: admin add
// requests resolve through the suite's scenario grammar and dataset seeds.
func NewFleetService(s *Suite, cfg FleetServiceConfig) (*FleetService, error) {
	return core.NewFleetService(s, cfg)
}

// NewFleetAdmin dials a running fleet service's control plane.
func NewFleetAdmin(broker string) (*FleetAdmin, error) {
	return fleetd.NewAdmin(broker, mqtt.DialOptions{})
}

// Testbed.
type (
	// TestbedConfig parameterises the scaled prototype testbed.
	TestbedConfig = testbed.Config
	// TestbedValidation is the Section VI benign-vs-attacked result.
	TestbedValidation = testbed.ValidationResult
)

// DefaultTestbedConfig returns the paper's testbed parameters.
func DefaultTestbedConfig() TestbedConfig { return testbed.DefaultConfig() }

// ValidateTestbed runs the full Section VI experiment on the canonical
// four-zone rig.
func ValidateTestbed(cfg TestbedConfig) (TestbedValidation, error) { return testbed.Validate(cfg) }

// ValidateTestbedHouse runs the Section VI experiment against any scenario
// house scaled down to the tabletop rig.
func ValidateTestbedHouse(cfg TestbedConfig, h *House) (TestbedValidation, error) {
	return testbed.ValidateHouse(cfg, h)
}
