module github.com/acyd-lab/shatter

go 1.24
