// Command bench runs the experiment suite end to end and emits a
// machine-readable JSON baseline (wall time per experiment, allocation
// stats, cache effectiveness) for tracking the performance trajectory
// across PRs. Alongside the per-table experiments it measures a
// scenario_sweep series (the full pipeline over registry archetypes and
// procedural homes up to 12 zones / 4 occupants), a stream_fleet
// series: the incremental streaming runtime driving a procedurally
// generated fleet concurrently, reporting homes/sec and events/sec — a
// stream_fleet_mqtt series routing the same fleet through an in-process
// broker on the binary day-block transport — and a stream_fleet_chaos
// series, the same fleet under the supervised fault-injection path
// (block-scale seeded chaos, checkpointed retries on a virtual clock),
// which prices the resilience layer against the clean run. A separate
// fleetd_scale series runs the sharded fleet service's multiplexed
// scheduler over -fleetd-scale home counts (plus -fleetd-chaos counts under
// mixed fault injection), producing the scaling curve committed as
// BENCH_PR9.json. A fleetd_restart series prices process-level recovery:
// a fleet admitted through the durable manifest is dropped without any
// flush at roughly half completion and rebooted from the state directory,
// measuring manifest replay and the catch-up run from day-boundary
// checkpoints (committed as BENCH_PR10.json).
//
// Usage:
//
//	bench [-days N] [-train N] [-seed S] [-workers N] [-o BENCH.json]
//	      [-fleet-homes N] [-fleet-days N] [-fleetd-scale N1,N2,...]
//	      [-fleetd-chaos N1,N2,...] [-fleetd-days N] [-fleetd-restart N]
//	      [-cpuprofile F] [-memprofile F] [-baseline BENCH.json]
//	      [-max-regress R] [-chaos-ratio R] [-compare BENCH.json]
//
// The default configuration matches the benchmark harness's quick suite
// (12 days) so numbers are comparable with `go test -bench` and with the
// BENCH_PR1.json baseline.
//
// -baseline turns the run into a perf gate: after measuring, every warm
// series — and every fleetd_scale point with a matching (homes, days)
// shape in the baseline — is compared against the named committed baseline
// and the command exits non-zero when any regresses by more than
// -max-regress (default 2×, plus a small absolute slack so
// microsecond-scale series don't flake on scheduler noise). -compare
// prints a per-series delta table (warm times, fleetd points, speedup
// factors) against a prior report without gating — the PR-to-PR
// comparison view. -cpuprofile / -memprofile emit pprof profiles of the
// whole run so perf work starts from a profile, not a guess.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/acyd-lab/shatter/internal/core"
	"github.com/acyd-lab/shatter/internal/fleetd"
	"github.com/acyd-lab/shatter/internal/mqtt"
	"github.com/acyd-lab/shatter/internal/profiling"
	"github.com/acyd-lab/shatter/internal/scenario"
	"github.com/acyd-lab/shatter/internal/stream"
)

// Measurement is one experiment's wall-clock record. Cold is the first run
// (artifact cache faults in models, splits, and simulations); Warm is a
// second run over the populated cache.
type Measurement struct {
	Name   string `json:"name"`
	ColdNS int64  `json:"cold_ns"`
	WarmNS int64  `json:"warm_ns"`
}

// Report is the emitted baseline document.
type Report struct {
	Days         int           `json:"days"`
	TrainDays    int           `json:"train_days"`
	Seed         uint64        `json:"seed"`
	Workers      int           `json:"workers"`
	GOMAXPROCS   int           `json:"gomaxprocs"`
	SuiteBuildNS int64         `json:"suite_build_ns"`
	Experiments  []Measurement `json:"experiments"`
	// StreamFleet is the stream_fleet series' aggregate: homes/sec and
	// events/sec for FleetHomes homes streaming FleetDays days each.
	FleetHomes  int                `json:"fleet_homes"`
	FleetDays   int                `json:"fleet_days"`
	StreamFleet *stream.FleetStats `json:"stream_fleet,omitempty"`
	// StreamFleetMQTT is the stream_fleet_mqtt series' aggregate: the same
	// fleet routed through an in-process MQTT broker on the binary day-block
	// transport, pricing the wire hop against the direct path.
	StreamFleetMQTT *stream.FleetStats `json:"stream_fleet_mqtt,omitempty"`
	// StreamFleetChaos is the stream_fleet_chaos series' aggregate: the
	// same fleet under the supervised fault-injection path (block-scale
	// seeded chaos on the day-frame transport, checkpointed retries on a
	// virtual clock), reporting the resilience counters alongside
	// throughput.
	StreamFleetChaos *stream.FleetStats `json:"stream_fleet_chaos,omitempty"`
	// FleetdScale is the sharded fleet service's scaling curve: each point
	// runs N synthetic homes through the multiplexed day-boundary scheduler
	// (internal/fleetd) on this machine. Points whose (homes, days) shape
	// exists in the gate baseline are gated on elapsed time; other point
	// counts (CI runs small, committed baselines go to 100k+) are reported
	// but never fail the gate.
	FleetdScale []FleetdPoint `json:"fleetd_scale,omitempty"`
	// FleetdRestart is the fleetd_restart series: the crash-restart recovery
	// measurement over the durable state directory.
	FleetdRestart *FleetdRestart `json:"fleetd_restart,omitempty"`
	ADMTrainings  int64          `json:"adm_trainings"`
	CacheEntries  int            `json:"cache_entries"`
	TotalNS       int64          `json:"total_ns"`
}

// FleetdPoint is one fleetd scaling measurement. Chaos points run the same
// fleet under mixed block-scale fault injection with supervised retries on
// a virtual clock (in-memory checkpoints), and carry the resilience
// counters the run induced.
type FleetdPoint struct {
	Homes          int     `json:"homes"`
	Days           int     `json:"days"`
	Shards         int     `json:"shards"`
	MaxResident    int     `json:"max_resident"`
	Chaos          bool    `json:"chaos,omitempty"`
	Retries        int64   `json:"retries,omitempty"`
	Restores       int64   `json:"restores,omitempty"`
	ElapsedNS      int64   `json:"elapsed_ns"`
	Slots          int64   `json:"slots"`
	Events         int64   `json:"events"`
	HomesPerSec    float64 `json:"homes_per_sec"`
	DaysPerSec     float64 `json:"days_per_sec"`
	EventsPerSec   float64 `json:"events_per_sec"`
	HeapAllocBytes uint64  `json:"heap_alloc_bytes"`
}

// FleetdRestart is the fleetd_restart series' record: a fleet admitted
// through the durable manifest is dropped without any persistence flush
// (the bench's stand-in for kill -9) at roughly half completion and
// rebooted from the same state directory. ReplayNS covers manifest replay
// plus re-admission inside NewService; ResumeNS is the rebooted service's
// catch-up run — finished homes served from the journal, in-flight homes
// restored from their newest day-boundary checkpoints.
type FleetdRestart struct {
	Homes        int   `json:"homes"`
	Days         int   `json:"days"`
	KilledAtDone int64 `json:"killed_at_done"`
	ResumedDone  int   `json:"resumed_done"`
	ResumedLive  int   `json:"resumed_live"`
	Restores     int64 `json:"restores"`
	ReplayNS     int64 `json:"replay_ns"`
	ResumeNS     int64 `json:"resume_ns"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	days := fs.Int("days", 12, "trace length in days")
	train := fs.Int("train", 9, "ADM training days")
	seed := fs.Uint64("seed", 20230427, "dataset seed")
	workers := fs.Int("workers", 0, "experiment worker pool (0 = all CPUs)")
	fleetHomes := fs.Int("fleet-homes", 100, "stream_fleet series: concurrent synth homes")
	fleetDays := fs.Int("fleet-days", 2, "stream_fleet series: days per home")
	fleetdScale := fs.String("fleetd-scale", "1000", "fleetd scaling series: comma-separated home counts (empty disables)")
	fleetdChaos := fs.String("fleetd-chaos", "1000", "fleetd chaos scaling series: comma-separated home counts run under mixed fault injection (empty disables)")
	fleetdDays := fs.Int("fleetd-days", 1, "fleetd scaling series: days per home")
	fleetdRestart := fs.Int("fleetd-restart", 1000, "fleetd_restart series: homes for the crash-restart recovery measurement (0 disables)")
	chaosRatio := fs.Float64("chaos-ratio", 0, "fail when warm stream_fleet_chaos exceeds this multiple of warm stream_fleet (0 disables)")
	out := fs.String("o", "BENCH_PR10.json", "output path (- for stdout)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile (after a final GC) to this file")
	baseline := fs.String("baseline", "", "committed baseline report to gate warm series against")
	maxRegress := fs.Float64("max-regress", 2.0, "fail when a warm series exceeds this multiple of the baseline")
	compare := fs.String("compare", "", "prior report to print a per-series delta table against (no gating)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProfiles, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer stopProfiles()

	cfg := core.SuiteConfig{Days: *days, TrainDays: *train, Seed: *seed, WindowLen: 10, Workers: *workers}
	started := time.Now()
	buildStart := time.Now()
	s, err := core.NewSuite(cfg)
	if err != nil {
		return err
	}
	report := Report{
		Days:         cfg.Days,
		TrainDays:    cfg.TrainDays,
		Seed:         cfg.Seed,
		Workers:      cfg.Workers,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		SuiteBuildNS: time.Since(buildStart).Nanoseconds(),
	}

	experiments := []struct {
		name string
		run  func() error
	}{
		{"Fig3", discard(s.Fig3)},
		{"Fig4", discard(s.Fig4)},
		{"Fig5", discard(s.Fig5)},
		{"Fig6", discard(s.Fig6)},
		{"TableIII", discard(s.CaseStudy)},
		{"TableIV", discard(s.TableIV)},
		{"TableV", discard(s.TableV)},
		{"Fig10", discard(s.Fig10)},
		{"TableVI", discard(s.TableVI)},
		{"TableVII", discard(s.TableVII)},
		{"scenario_sweep", func() error {
			// Full pipeline over the non-ARAS registry archetypes plus a
			// procedural ramp to 12 zones / 4 occupants. The warm leg reuses
			// every per-scenario cached artifact.
			_, err := s.ScenarioSweep(scenario.DefaultSweep(cfg.Seed))
			return err
		}},
		{"stream_fleet", func() error {
			// The streaming runtime at fleet scale: N procedurally generated
			// homes advance slot-by-slot over the worker pool. There is no
			// artifact cache on this path (nothing is materialized), so cold
			// and warm legs measure the same steady-state throughput; the
			// emitted stats come from the warm leg.
			res, err := s.Stream(scenario.SynthFleet(*fleetHomes, cfg.Seed), core.StreamOptions{Days: *fleetDays})
			if err != nil {
				return err
			}
			report.FleetHomes = *fleetHomes
			report.FleetDays = *fleetDays
			report.StreamFleet = &res.Stats
			return nil
		}},
		{"stream_fleet_mqtt", func() error {
			// The wire series: the same fleet routed through an in-process
			// MQTT broker on the binary day-block transport. The delta
			// against stream_fleet prices the broker hop.
			broker, err := mqtt.NewBroker("127.0.0.1:0")
			if err != nil {
				return err
			}
			defer broker.Close()
			res, err := s.Stream(scenario.SynthFleet(*fleetHomes, cfg.Seed), core.StreamOptions{
				Days:   *fleetDays,
				Broker: broker.Addr(),
			})
			if err != nil {
				return err
			}
			report.StreamFleetMQTT = &res.Stats
			return nil
		}},
		{"stream_fleet_chaos", func() error {
			// The same fleet under the supervised fault path: a seeded chaos
			// schedule perturbs every home's day-frame transport, failed
			// homes retry from day-boundary checkpoints (written through the
			// async sink), and delay faults plus retry backoff burn virtual
			// time instead of wall-clock. The stats record how much
			// resilience work (retries, restores) the faults induced; the
			// delta against stream_fleet prices the supervision layer.
			dir, err := os.MkdirTemp("", "shatter-bench-ckpt-*")
			if err != nil {
				return err
			}
			defer os.RemoveAll(dir)
			res, err := s.Stream(scenario.SynthFleet(*fleetHomes, cfg.Seed), core.StreamOptions{
				Days:             *fleetDays,
				Recover:          true,
				CheckpointDir:    dir,
				AsyncCheckpoints: true,
				Clock:            stream.NewVirtualClock(),
				// Block-scale probabilities: the transport moves one frame
				// per home-day, so per-frame rates are ~1000x the per-slot
				// rates earlier baselines used.
				Chaos: &stream.FaultConfig{
					Seed: cfg.Seed, Drop: 0.04, Duplicate: 0.06, Delay: 0.05,
					Corrupt: 0.02, Truncate: 0.02, Disconnect: 0.01,
					MaxDelay: 100 * time.Microsecond,
				},
			})
			if err != nil {
				return err
			}
			if res.Stats.Quarantined != 0 {
				return fmt.Errorf("chaos quarantined %d homes", res.Stats.Quarantined)
			}
			if res.Stats.Retries == 0 || res.Stats.Restores == 0 {
				return fmt.Errorf("chaos fixture inert: %d retries, %d restores", res.Stats.Retries, res.Stats.Restores)
			}
			report.StreamFleetChaos = &res.Stats
			return nil
		}},
	}
	for _, e := range experiments {
		cold := time.Now()
		if err := e.run(); err != nil {
			return fmt.Errorf("%s (cold): %w", e.name, err)
		}
		coldNS := time.Since(cold).Nanoseconds()
		warm := time.Now()
		if err := e.run(); err != nil {
			return fmt.Errorf("%s (warm): %w", e.name, err)
		}
		report.Experiments = append(report.Experiments, Measurement{
			Name:   e.name,
			ColdNS: coldNS,
			WarmNS: time.Since(warm).Nanoseconds(),
		})
	}
	scaleSeries := []struct {
		flag, spec string
		chaos      bool
	}{
		{"-fleetd-scale", *fleetdScale, false},
		{"-fleetd-chaos", *fleetdChaos, true},
	}
	for _, series := range scaleSeries {
		for _, field := range strings.Split(series.spec, ",") {
			field = strings.TrimSpace(field)
			if field == "" {
				continue
			}
			n, err := strconv.Atoi(field)
			if err != nil || n < 1 {
				return fmt.Errorf("bad %s entry %q (want positive home counts)", series.flag, field)
			}
			pt, err := runFleetdScale(s, n, *fleetdDays, cfg.Seed, series.chaos)
			if err != nil {
				return fmt.Errorf("%s %d: %w", fleetdPointName(FleetdPoint{Homes: n, Days: *fleetdDays, Chaos: series.chaos}), n, err)
			}
			fmt.Fprintf(os.Stderr, "%s: %d homes x %d days in %s (%.1f homes/s, %.0f events/s, %d retries, %d restores, heap %.1f MiB)\n",
				fleetdPointName(pt), pt.Homes, pt.Days, time.Duration(pt.ElapsedNS).Round(time.Millisecond),
				pt.HomesPerSec, pt.EventsPerSec, pt.Retries, pt.Restores, float64(pt.HeapAllocBytes)/(1<<20))
			report.FleetdScale = append(report.FleetdScale, pt)
		}
	}
	if *fleetdRestart > 0 {
		rp, err := runFleetdRestart(s, *fleetdRestart, *fleetdDays, cfg.Seed)
		if err != nil {
			return fmt.Errorf("fleetd_restart: %w", err)
		}
		fmt.Fprintf(os.Stderr, "fleetd_restart: %d homes killed at %d done, replay %s, resume %s (%d finished, %d live, %d restores)\n",
			rp.Homes, rp.KilledAtDone, time.Duration(rp.ReplayNS).Round(time.Microsecond),
			time.Duration(rp.ResumeNS).Round(time.Millisecond), rp.ResumedDone, rp.ResumedLive, rp.Restores)
		report.FleetdRestart = rp
	}

	stats := s.CacheStats()
	report.ADMTrainings = stats.ADMTrainings
	report.CacheEntries = stats.Entries
	report.TotalNS = time.Since(started).Nanoseconds()

	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out == "-" {
		if _, err := os.Stdout.Write(enc); err != nil {
			return err
		}
	} else {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (total %s, %d ADM trainings, %d cache entries)\n",
			*out, time.Duration(report.TotalNS).Round(time.Millisecond), report.ADMTrainings, report.CacheEntries)
	}
	// With the report on stdout, keep the gate's and the comparison's
	// chatter on stderr so JSON consumers see a clean document.
	chatter := io.Writer(os.Stdout)
	if *out == "-" {
		chatter = os.Stderr
	}
	if *compare != "" {
		if err := compareAgainstBaseline(chatter, report, *compare); err != nil {
			return err
		}
	}
	if *chaosRatio > 0 {
		if err := gateChaosRatio(chatter, report, *chaosRatio); err != nil {
			return err
		}
	}
	if *baseline != "" {
		return gateAgainstBaseline(chatter, report, *baseline, *maxRegress)
	}
	return nil
}

// gateChaosRatio fails the run when the warm stream_fleet_chaos series costs
// more than ratio× the warm clean stream_fleet series (plus the absolute
// slack) — the in-run price ceiling on the resilience layer, independent of
// any committed baseline.
func gateChaosRatio(w io.Writer, report Report, ratio float64) error {
	warm := make(map[string]int64, len(report.Experiments))
	for _, m := range report.Experiments {
		warm[m.Name] = m.WarmNS
	}
	clean, okClean := warm["stream_fleet"]
	chaos, okChaos := warm["stream_fleet_chaos"]
	if !okClean || !okChaos {
		return fmt.Errorf("chaos-ratio gate: stream_fleet and stream_fleet_chaos series required")
	}
	limit := int64(float64(clean)*ratio) + regressSlackNS
	status := "ok"
	if chaos > limit {
		status = "FAIL"
	}
	fmt.Fprintf(w, "gate: chaos/clean warm %12s vs %12s (limit %.1fx+slack = %s) %s\n",
		time.Duration(chaos), time.Duration(clean), ratio, time.Duration(limit), status)
	if status == "FAIL" {
		return fmt.Errorf("chaos-ratio gate: warm stream_fleet_chaos %s exceeds %.1fx warm stream_fleet %s",
			time.Duration(chaos), ratio, time.Duration(clean))
	}
	return nil
}

// loadReport reads a committed bench report.
func loadReport(path string) (Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Report{}, fmt.Errorf("baseline: %w", err)
	}
	var base Report
	if err := json.Unmarshal(raw, &base); err != nil {
		return Report{}, fmt.Errorf("baseline %s: %w", path, err)
	}
	return base, nil
}

// fleetdPointName labels a scaling point by its shape — the key both the
// gate and the comparison table match points across reports with. Chaos
// points carry a suffix so they gate against chaos baselines only.
func fleetdPointName(pt FleetdPoint) string {
	name := fmt.Sprintf("fleetd_scale_%dx%dd", pt.Homes, pt.Days)
	if pt.Chaos {
		name += "_chaos"
	}
	return name
}

// compareAgainstBaseline prints the per-series delta table against a prior
// report: warm wall time per experiment series and elapsed time per
// matching fleetd scaling point, each with the speedup factor (old/new, so
// >1 is faster). Purely informational — it never fails the run.
func compareAgainstBaseline(w io.Writer, report Report, path string) error {
	base, err := loadReport(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "compare: this run vs %s (speedup = baseline/current, >1 is faster)\n", path)
	row := func(name string, baseNS, nowNS int64) {
		speed := "      n/a"
		if nowNS > 0 {
			speed = fmt.Sprintf("%8.2fx", float64(baseNS)/float64(nowNS))
		}
		fmt.Fprintf(w, "compare: %-22s %14s -> %-14s %s\n",
			name, time.Duration(baseNS).Round(time.Microsecond), time.Duration(nowNS).Round(time.Microsecond), speed)
	}
	baseWarm := make(map[string]int64, len(base.Experiments))
	for _, m := range base.Experiments {
		baseWarm[m.Name] = m.WarmNS
	}
	seen := make(map[string]bool, len(report.Experiments))
	for _, m := range report.Experiments {
		seen[m.Name] = true
		if want, ok := baseWarm[m.Name]; ok {
			row(m.Name, want, m.WarmNS)
		} else {
			fmt.Fprintf(w, "compare: %-22s new series (warm %s)\n", m.Name, time.Duration(m.WarmNS).Round(time.Microsecond))
		}
	}
	for _, m := range base.Experiments {
		if !seen[m.Name] {
			fmt.Fprintf(w, "compare: %-22s only in baseline (warm %s)\n", m.Name, time.Duration(m.WarmNS).Round(time.Microsecond))
		}
	}
	basePts := make(map[string]int64, len(base.FleetdScale))
	for _, pt := range base.FleetdScale {
		basePts[fleetdPointName(pt)] = pt.ElapsedNS
	}
	for _, pt := range report.FleetdScale {
		name := fleetdPointName(pt)
		if want, ok := basePts[name]; ok {
			row(name, want, pt.ElapsedNS)
		} else {
			fmt.Fprintf(w, "compare: %-22s new point (%s, %.1f homes/s)\n",
				name, time.Duration(pt.ElapsedNS).Round(time.Microsecond), pt.HomesPerSec)
		}
	}
	return nil
}

// regressSlackNS is the absolute slack the perf gate adds on top of the
// relative bound: sub-millisecond warm series (fully cache-hit experiments)
// sit at scheduler-noise scale, where a bare 2× ratio would flake.
const regressSlackNS = 10_000_000

// gateAgainstBaseline fails the run when any warm series — or any fleetd
// scaling point whose (homes, days) shape the baseline also measured —
// regresses by more than maxRegress× its committed baseline (plus the
// absolute slack). Series only present on one side are reported but never
// fail the gate, so the baseline file does not have to move in lockstep
// with new experiments — but both directions are surfaced, so a series
// silently dropped from the bench still leaves a visible trace in the gate
// output.
func gateAgainstBaseline(w io.Writer, report Report, path string, maxRegress float64) error {
	base, err := loadReport(path)
	if err != nil {
		return err
	}
	baseWarm := make(map[string]int64, len(base.Experiments))
	for _, m := range base.Experiments {
		baseWarm[m.Name] = m.WarmNS
	}
	measured := make(map[string]bool, len(report.Experiments))
	var failed []string
	for _, m := range report.Experiments {
		measured[m.Name] = true
		want, ok := baseWarm[m.Name]
		if !ok {
			fmt.Fprintf(w, "gate: %-16s no baseline series, skipped\n", m.Name)
			continue
		}
		limit := int64(float64(want)*maxRegress) + regressSlackNS
		status := "ok"
		if m.WarmNS > limit {
			status = "FAIL"
			failed = append(failed, m.Name)
		}
		fmt.Fprintf(w, "gate: %-16s warm %12s vs baseline %12s (limit %12s) %s\n",
			m.Name, time.Duration(m.WarmNS), time.Duration(want), time.Duration(limit), status)
	}
	for _, m := range base.Experiments {
		if !measured[m.Name] {
			fmt.Fprintf(w, "gate: %-16s in baseline but not measured this run\n", m.Name)
		}
	}
	basePts := make(map[string]int64, len(base.FleetdScale))
	for _, pt := range base.FleetdScale {
		basePts[fleetdPointName(pt)] = pt.ElapsedNS
	}
	for _, pt := range report.FleetdScale {
		name := fleetdPointName(pt)
		want, ok := basePts[name]
		if !ok {
			fmt.Fprintf(w, "gate: %-16s no baseline point, skipped\n", name)
			continue
		}
		limit := int64(float64(want)*maxRegress) + regressSlackNS
		status := "ok"
		if pt.ElapsedNS > limit {
			status = "FAIL"
			failed = append(failed, name)
		}
		fmt.Fprintf(w, "gate: %-16s elapsed %10s vs baseline %12s (limit %12s) %s\n",
			name, time.Duration(pt.ElapsedNS), time.Duration(want), time.Duration(limit), status)
	}
	if len(failed) > 0 {
		return fmt.Errorf("perf gate: %d warm series regressed >%.1fx vs %s: %v",
			len(failed), maxRegress, path, failed)
	}
	fmt.Fprintf(w, "perf gate passed against %s (max regress %.1fx + %s slack)\n",
		path, maxRegress, time.Duration(regressSlackNS))
	return nil
}

// runFleetdScale drives one fleetd scaling point: homes synthetic homes
// admitted to a 4-shard service with a bounded admission window, run to
// completion through the multiplexed scheduler. The elapsed clock covers
// admission through fleet-idle; the heap figure is sampled at completion.
// Chaos points layer mixed block-scale fault injection over the same fleet:
// supervised retries resume from in-memory day-boundary checkpoints and
// delay faults plus backoff timers run on a virtual clock, so the point
// measures recovery compute, not sleep.
func runFleetdScale(s *core.Suite, homes, days int, seed uint64, chaos bool) (FleetdPoint, error) {
	jobs, err := s.FleetJobs(scenario.SynthFleet(homes, seed), core.StreamOptions{Days: days})
	if err != nil {
		return FleetdPoint{}, err
	}
	const shards = 4
	shard := fleetd.ShardOptions{MaxResident: 2048}
	if chaos {
		shard.Recover = true
		shard.Clock = stream.NewVirtualClock()
		shard.Chaos = &stream.FaultConfig{
			Seed: seed, Drop: 0.04, Duplicate: 0.06, Delay: 0.05,
			Corrupt: 0.02, Truncate: 0.02, Disconnect: 0.01,
			MaxDelay: 100 * time.Microsecond,
		}
	}
	svc, err := fleetd.NewService(fleetd.Config{
		Shards: shards,
		Shard:  shard,
	})
	if err != nil {
		return FleetdPoint{}, err
	}
	defer svc.Close(false)
	began := time.Now()
	if err := svc.Add(jobs); err != nil {
		return FleetdPoint{}, err
	}
	svc.WaitIdle()
	elapsed := time.Since(began)
	snap := svc.Snapshot()
	if snap.HomesFailed > 0 {
		return FleetdPoint{}, fmt.Errorf("%d homes failed", snap.HomesFailed)
	}
	if snap.HomesCompleted != int64(homes) {
		return FleetdPoint{}, fmt.Errorf("completed %d of %d homes", snap.HomesCompleted, homes)
	}
	// Single-day homes have no mid-run day boundary to checkpoint at, so
	// only retries are guaranteed; restores additionally need days > 1.
	if chaos && (snap.Retries == 0 || (days > 1 && snap.Restores == 0)) {
		return FleetdPoint{}, fmt.Errorf("chaos fixture inert: %d retries, %d restores", snap.Retries, snap.Restores)
	}
	pt := FleetdPoint{
		Homes:          homes,
		Days:           days,
		Shards:         shards,
		MaxResident:    2048,
		Chaos:          chaos,
		Retries:        snap.Retries,
		Restores:       snap.Restores,
		ElapsedNS:      elapsed.Nanoseconds(),
		Slots:          snap.Slots,
		Events:         snap.SensorEvents + snap.ActionEvents + snap.Verdicts,
		HeapAllocBytes: snap.HeapAllocBytes,
	}
	if secs := elapsed.Seconds(); secs > 0 {
		pt.HomesPerSec = float64(homes) / secs
		pt.DaysPerSec = float64(snap.Days) / secs
		pt.EventsPerSec = float64(pt.Events) / secs
	}
	return pt, nil
}

// runFleetdRestart measures the process-level recovery path: admit homes
// synthetic homes through the durable manifest, drop the service without
// any persistence flush once roughly half the fleet completed, and reboot
// from the same state directory. Replay covers NewService's manifest read
// and re-admission; resume is the catch-up run to fleet-idle. Days is
// floored at 2 so in-flight homes have a day boundary to checkpoint at —
// otherwise the restart would measure only from-scratch reruns.
func runFleetdRestart(s *core.Suite, homes, days int, seed uint64) (*FleetdRestart, error) {
	if days < 2 {
		days = 2
	}
	stateDir, err := os.MkdirTemp("", "shatter-bench-state-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(stateDir)
	cfg := fleetd.Config{
		Shards:   4,
		StateDir: stateDir,
		Shard:    fleetd.ShardOptions{MaxResident: 2048, Recover: true},
	}
	svc, err := core.NewFleetService(s, cfg)
	if err != nil {
		return nil, err
	}
	if _, err := svc.AddSpec(fleetd.AddRequest{Synth: homes, Seed: seed, Days: days}); err != nil {
		svc.Close(false)
		return nil, err
	}
	var killedAt int64
	for {
		snap := svc.Snapshot()
		killedAt = snap.HomesCompleted
		if killedAt >= int64(homes)/2 || snap.HomesActive == 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	svc.Close(false) // no final flush: the bench's kill -9

	replayStart := time.Now()
	svc2, err := core.NewFleetService(s, cfg)
	if err != nil {
		return nil, err
	}
	defer svc2.Close(false)
	replay := time.Since(replayStart)
	resumedDone, resumedLive := svc2.Resumed()
	resumeStart := time.Now()
	svc2.WaitIdle()
	resume := time.Since(resumeStart)
	snap := svc2.Snapshot()
	if snap.HomesFailed > 0 {
		return nil, fmt.Errorf("%d homes failed after restart", snap.HomesFailed)
	}
	if got := len(svc2.Result().Homes); got != homes {
		return nil, fmt.Errorf("restarted fleet finished %d of %d homes", got, homes)
	}
	return &FleetdRestart{
		Homes:        homes,
		Days:         days,
		KilledAtDone: killedAt,
		ResumedDone:  resumedDone,
		ResumedLive:  resumedLive,
		Restores:     snap.Restores,
		ReplayNS:     replay.Nanoseconds(),
		ResumeNS:     resume.Nanoseconds(),
	}, nil
}

// discard adapts an experiment method to a result-free runner.
func discard[T any](f func() (T, error)) func() error {
	return func() error {
		_, err := f()
		return err
	}
}
