// Command experiments regenerates every table and figure of the SHATTER
// paper's evaluation (DESIGN.md §4) and prints them in the paper's layout.
//
// Usage:
//
//	experiments [-days N] [-train N] [-seed S] [-workers N] [-quick]
//	            [-only fig3,tableV,...] [-suite A,B,...] [-scenarios list]
//	            [-stream list|N] [-stream-days N] [-stream-mqtt]
//	            [-stream-defend] [-stream-attack] [-stream-legacy-json]
//	            [-stream-chaos spec] [-stream-checkpoint-dir D]
//	            [-stream-retries N] [-stream-failfast]
//	            [-stream-virtual-clock] [-stream-async-ckpt]
//	            [-cpuprofile F] [-memprofile F]
//
// -quick runs a reduced 12-day configuration for a fast smoke pass.
// -workers bounds the experiment worker pool (0 = one per CPU; 1 = fully
// sequential — results are identical either way).
// -suite selects the registry scenarios the paper experiments run over
// (default: the ARAS pair "A,B", reproducing the paper exactly).
// -scenarios runs the full-stack ScenarioSweep over the listed worlds:
// registry IDs ("studio", "family4", ...) and/or procedural homes written
// as "synth:ZxO" or "synth:ZxO@SEED" (e.g. "synth:12x4" is a 12-zone,
// 4-occupant generated home).
// -stream runs the streaming fleet instead of (or alongside) the batch
// experiments: the argument is either a scenario list in the -scenarios
// syntax or a bare home count N (N procedurally generated homes). Each
// home advances slot-by-slot through the incremental event core;
// -stream-defend attaches the online detector, -stream-attack injects a
// live SHATTER campaign, and -stream-mqtt routes every home's frames
// through an in-process MQTT broker with a fleet-wide home/+/sensor
// monitor.
// -stream-chaos turns on the fault-tolerant supervisor and injects a
// deterministic fault schedule into every home's transport. The spec is a
// comma-separated k=v list: drop, dup, delay, corrupt, trunc and disc set
// per-frame fault probabilities; seed picks the schedule; maxdelay bounds
// injected latency (duration syntax); clean is the first fault-free
// attempt (e.g. "drop=0.001,dup=0.002,seed=7,maxdelay=1ms"). Failed homes
// retry from their last checkpoint (-stream-checkpoint-dir persists the
// checkpoints) up to -stream-retries attempts before quarantine;
// -stream-failfast aborts the fleet on the first quarantine instead.
// -cpuprofile / -memprofile write pprof profiles of the selected
// experiments, so performance work on the suite starts from a profile.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/acyd-lab/shatter/internal/core"
	"github.com/acyd-lab/shatter/internal/mqtt"
	"github.com/acyd-lab/shatter/internal/profiling"
	"github.com/acyd-lab/shatter/internal/scenario"
	"github.com/acyd-lab/shatter/internal/stream"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	days := fs.Int("days", 30, "trace length in days")
	train := fs.Int("train", 25, "ADM training days")
	seed := fs.Uint64("seed", 20230427, "dataset seed")
	quick := fs.Bool("quick", false, "reduced 12-day run")
	workers := fs.Int("workers", 0, "experiment worker pool (0 = all CPUs, 1 = sequential)")
	only := fs.String("only", "", "comma-separated experiment ids (default all)")
	suiteScen := fs.String("suite", "", "registry scenarios for the paper experiments (default A,B)")
	sweep := fs.String("scenarios", "", "ScenarioSweep worlds: registry IDs and/or synth:ZxO[@SEED]")
	streamArg := fs.String("stream", "", "streaming fleet: scenario list (same syntax as -scenarios) or a bare synth home count")
	streamDays := fs.Int("stream-days", 0, "days each fleet home streams (0 = -days)")
	streamMQTT := fs.Bool("stream-mqtt", false, "route fleet frames through an in-process MQTT broker")
	streamDefend := fs.Bool("stream-defend", false, "attach the online ADM detector to every fleet home")
	streamAttack := fs.Bool("stream-attack", false, "inject a live SHATTER campaign into every fleet home")
	streamChaos := fs.String("stream-chaos", "", "supervised fleet under injected faults: k=v list (drop,dup,delay,corrupt,trunc,disc,seed,maxdelay,clean)")
	streamCkptDir := fs.String("stream-checkpoint-dir", "", "persist per-home day-boundary checkpoints in this directory")
	streamRetries := fs.Int("stream-retries", 0, "retry budget per failed home (0 = default, negative = no retries)")
	streamFailFast := fs.Bool("stream-failfast", false, "abort the fleet on the first quarantined home")
	streamLegacyJSON := fs.Bool("stream-legacy-json", false, "force per-slot JSON framing instead of binary day-block transport")
	streamVirtualClock := fs.Bool("stream-virtual-clock", false, "run chaos delays and retry backoff on a virtual clock (compute-bound, byte-identical results)")
	streamAsyncCkpt := fs.Bool("stream-async-ckpt", false, "write day-boundary checkpoints through the async sink instead of inline")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile (after a final GC) to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProfiles, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer stopProfiles()
	cfg := core.SuiteConfig{Days: *days, TrainDays: *train, Seed: *seed, WindowLen: 10, Workers: *workers}
	if *quick {
		cfg.Days, cfg.TrainDays = 12, 9
	}
	for _, id := range strings.Split(*suiteScen, ",") {
		if id = strings.TrimSpace(id); id != "" {
			cfg.Scenarios = append(cfg.Scenarios, id)
		}
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	sweepSpecs, err := scenario.ParseList(*sweep, *seed)
	if err != nil {
		return err
	}
	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(strings.ToLower(id)); id != "" {
			want[id] = true
		}
	}
	sel := func(id string) bool { return len(want) == 0 || want[strings.ToLower(id)] }
	if want["scenarios"] && len(sweepSpecs) == 0 {
		return fmt.Errorf("-only scenarios needs a -scenarios list (e.g. -scenarios \"studio,synth:12x4\")")
	}
	streamSpecs, err := parseStreamSpecs(*streamArg, *seed)
	if err != nil {
		return err
	}
	if want["stream"] && len(streamSpecs) == 0 {
		return fmt.Errorf("-only stream needs a -stream fleet (e.g. -stream 100 or -stream \"A,B,synth:6x2\")")
	}

	started := time.Now()
	fmt.Printf("SHATTER experiment suite (days=%d train=%d seed=%d)\n\n", cfg.Days, cfg.TrainDays, cfg.Seed)
	s, err := core.NewSuite(cfg)
	if err != nil {
		return err
	}

	if sel("fig3") {
		if err := printFig3(s); err != nil {
			return err
		}
	}
	if sel("fig4") {
		if err := printFig4(s); err != nil {
			return err
		}
	}
	if sel("fig5") {
		if err := printFig5(s); err != nil {
			return err
		}
	}
	if sel("fig6") {
		if err := printFig6(s); err != nil {
			return err
		}
	}
	if sel("tableiii") {
		if err := printCaseStudy(s); err != nil {
			return err
		}
	}
	if sel("tableiv") {
		if err := printTableIV(s); err != nil {
			return err
		}
	}
	if sel("tablev") {
		if err := printTableV(s); err != nil {
			return err
		}
	}
	if sel("fig10") {
		if err := printFig10(s); err != nil {
			return err
		}
	}
	if sel("tablevi") {
		if err := printAccess(s, "Table VI — appliance-triggering impact vs zone access", s.TableVI); err != nil {
			return err
		}
	}
	if sel("tablevii") {
		if err := printAccess(s, "Table VII — appliance-triggering impact vs appliance access", s.TableVII); err != nil {
			return err
		}
	}
	if sel("fig11") {
		if err := printFig11(s); err != nil {
			return err
		}
	}
	if sel("testbed") {
		if err := printTestbed(s); err != nil {
			return err
		}
	}
	if len(sweepSpecs) > 0 && sel("scenarios") {
		if err := printScenarioSweep(s, sweepSpecs); err != nil {
			return err
		}
	}
	if len(streamSpecs) > 0 && sel("stream") {
		opts := core.StreamOptions{
			Days: *streamDays, Defend: *streamDefend, Attack: *streamAttack,
			MaxRetries: *streamRetries, FailFast: *streamFailFast,
			CheckpointDir: *streamCkptDir, LegacyJSON: *streamLegacyJSON,
			AsyncCheckpoints: *streamAsyncCkpt,
		}
		if *streamVirtualClock {
			opts.Clock = stream.NewVirtualClock()
		}
		if *streamChaos != "" {
			cfg, err := parseChaos(*streamChaos)
			if err != nil {
				return err
			}
			opts.Chaos, opts.Recover = cfg, true
		}
		if opts.CheckpointDir != "" || opts.MaxRetries != 0 {
			opts.Recover = true
		}
		if err := printStream(s, streamSpecs, opts, *streamMQTT); err != nil {
			return err
		}
	}
	fmt.Printf("\nall selected experiments done in %s\n", time.Since(started).Round(time.Millisecond))
	return nil
}

// parseChaos resolves the -stream-chaos spec, a comma-separated k=v list
// of fault probabilities and schedule knobs.
func parseChaos(spec string) (*stream.FaultConfig, error) {
	cfg := &stream.FaultConfig{}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		key, val, ok := strings.Cut(entry, "=")
		if !ok {
			return nil, fmt.Errorf("bad -stream-chaos entry %q (want k=v)", entry)
		}
		key = strings.ToLower(strings.TrimSpace(key))
		val = strings.TrimSpace(val)
		var err error
		switch key {
		case "seed":
			cfg.Seed, err = strconv.ParseUint(val, 10, 64)
		case "drop":
			cfg.Drop, err = strconv.ParseFloat(val, 64)
		case "dup", "duplicate":
			cfg.Duplicate, err = strconv.ParseFloat(val, 64)
		case "delay":
			cfg.Delay, err = strconv.ParseFloat(val, 64)
		case "corrupt":
			cfg.Corrupt, err = strconv.ParseFloat(val, 64)
		case "trunc", "truncate":
			cfg.Truncate, err = strconv.ParseFloat(val, 64)
		case "disc", "disconnect":
			cfg.Disconnect, err = strconv.ParseFloat(val, 64)
		case "maxdelay":
			cfg.MaxDelay, err = time.ParseDuration(val)
		case "clean":
			cfg.CleanAttempt, err = strconv.Atoi(val)
		default:
			return nil, fmt.Errorf("unknown -stream-chaos key %q (known: seed, drop, dup, delay, corrupt, trunc, disc, maxdelay, clean)", key)
		}
		if err != nil {
			return nil, fmt.Errorf("bad -stream-chaos value %q: %v", entry, err)
		}
	}
	return cfg, nil
}

// parseStreamSpecs resolves the -stream argument: a bare integer N fans out
// N procedurally generated homes with varied shapes; anything else is the
// -scenarios list syntax.
func parseStreamSpecs(arg string, seed uint64) ([]scenario.Spec, error) {
	arg = strings.TrimSpace(arg)
	if arg == "" {
		return nil, nil
	}
	if n, err := strconv.Atoi(arg); err == nil {
		if n < 1 {
			return nil, fmt.Errorf("-stream home count must be positive, got %d", n)
		}
		return scenario.SynthFleet(n, seed), nil
	}
	return scenario.ParseList(arg, seed)
}

func printStream(s *core.Suite, specs []scenario.Spec, opts core.StreamOptions, useMQTT bool) error {
	fmt.Println("== Streaming fleet — incremental event core over the worker pool ==")
	if useMQTT {
		broker, err := mqtt.NewBroker("127.0.0.1:0")
		if err != nil {
			return err
		}
		defer broker.Close()
		opts.Broker = broker.Addr()
		fmt.Printf("transport: MQTT broker %s (per-home topics, home/+/sensor monitor)\n", broker.Addr())
	} else {
		fmt.Println("transport: direct (in-process sources, no broker)")
	}
	res, err := s.Stream(specs, opts)
	if err != nil {
		return err
	}
	if len(res.Homes) <= 16 {
		fmt.Printf("%-22s %5s %9s %10s %10s %9s %9s %7s\n",
			"home", "days", "slots", "kWh", "cost $", "verdicts", "injected", "caught")
		for _, h := range res.Homes {
			fmt.Printf("%-22s %5d %9d %10.1f %10.2f %9d %9d %7d\n",
				h.ID, h.Days, h.Slots, h.Sim.TotalKWh, h.Sim.TotalCostUSD, h.Verdicts, h.Injected, h.Flagged)
		}
	}
	st := res.Stats
	fmt.Printf("fleet: %d homes, %d days, %d slots, %d events (%d sensor / %d action / %d verdict)\n",
		st.Homes, st.Days, st.Slots, st.Events, st.SensorEvents, st.ActionEvents, st.Verdicts)
	fmt.Printf("energy: %.1f kWh, $%.2f", st.TotalKWh, st.TotalCostUSD)
	if st.Injected > 0 {
		fmt.Printf("; detection: %d/%d injected episodes flagged (%.2f)",
			st.Flagged, st.Injected, float64(st.Flagged)/float64(st.Injected))
	}
	fmt.Println()
	fmt.Printf("throughput: %.1f homes/s, %.0f events/s in %s",
		st.HomesPerSec, st.EventsPerSec, st.Elapsed.Round(time.Millisecond))
	if st.BusFrames > 0 {
		fmt.Printf("; bus: %d frames through the broker", st.BusFrames)
	}
	fmt.Println()
	fmt.Printf("resilience: %d retries, %d checkpoint restores, %d homes quarantined\n",
		st.Retries, st.Restores, st.Quarantined)
	for _, o := range res.Outcomes {
		switch {
		case o.Status == stream.OutcomeQuarantined:
			fmt.Printf("  quarantined %s after %d attempts: %s\n", o.ID, o.Attempts, o.Err)
		case o.Restores > 0:
			fmt.Printf("  restored %s from its day-%d checkpoint (%d attempts, %d restores)\n",
				o.ID, o.CheckpointDay, o.Attempts, o.Restores)
		}
	}
	fmt.Println()
	return nil
}

func printScenarioSweep(s *core.Suite, specs []scenario.Spec) error {
	fmt.Println("== Scenario sweep — full pipeline on arbitrary worlds ==")
	points, err := s.ScenarioSweep(specs)
	if err != nil {
		return err
	}
	fmt.Printf("%-22s %5s %4s %5s %10s %10s %9s %6s %9s %6s %9s\n",
		"scenario", "zones", "occ", "appl", "benign $", "attacked $", "extra $", "det", "injected", "infeas", "t")
	for _, p := range points {
		fmt.Printf("%-22s %5d %4d %5d %10.2f %10.2f %9.2f %6.2f %9d %6d %9s\n",
			p.ScenarioID, p.Zones, p.Occupants, p.Appliances,
			p.BenignUSD, p.AttackedUSD, p.ExtraUSD, p.DetectionRate,
			p.InjectedSlots, p.InfeasibleWindows, p.Elapsed.Round(time.Millisecond))
	}
	stats := s.CacheStats()
	fmt.Printf("cache after sweep: %d ADM trainings, %d artifacts\n\n", stats.ADMTrainings, stats.Entries)
	return nil
}

func printFig3(s *core.Suite) error {
	fmt.Println("== Fig 3 — ASHRAE vs SHATTER control cost ==")
	results, err := s.Fig3()
	if err != nil {
		return err
	}
	for _, r := range results {
		var sumA, sumS float64
		for d := range r.ASHRAE {
			sumA += r.ASHRAE[d]
			sumS += r.SHATTER[d]
		}
		fmt.Printf("House %s: ASHRAE $%.2f/mo, SHATTER $%.2f/mo, savings %.1f%%\n",
			r.House, sumA, sumS, r.SavingsPct)
		fmt.Printf("  daily ASHRAE : %s\n", sparkline(r.ASHRAE))
		fmt.Printf("  daily SHATTER: %s\n", sparkline(r.SHATTER))
	}
	fmt.Println()
	return nil
}

func printFig4(s *core.Suite) error {
	fmt.Println("== Fig 4 — ADM hyperparameter tuning (HAO1) ==")
	results, err := s.Fig4()
	if err != nil {
		return err
	}
	for _, r := range results {
		fmt.Printf("%s on %s:\n", r.Algorithm, r.Dataset)
		fmt.Printf("  %6s %8s %8s %8s\n", "hyper", "DBI", "SC", "CHI")
		for _, p := range r.Points {
			fmt.Printf("  %6d %8.3f %8.3f %8.1f\n", p.Hyperparameter, p.DaviesBouldin, p.Silhouette, p.CalinskiHara)
		}
	}
	fmt.Println()
	return nil
}

func printFig5(s *core.Suite) error {
	fmt.Println("== Fig 5 — progressive training performance (F1) ==")
	results, err := s.Fig5()
	if err != nil {
		return err
	}
	for _, r := range results {
		fmt.Printf("%-8s %-8s:", r.Algorithm, r.Dataset)
		for _, p := range r.Points {
			fmt.Printf("  %dd=%.2f", p.TrainDays, p.F1)
		}
		fmt.Println()
	}
	fmt.Println()
	return nil
}

func printFig6(s *core.Suite) error {
	fmt.Println("== Fig 6 — cluster geometry (HAO1-style) ==")
	results, err := s.Fig6()
	if err != nil {
		return err
	}
	for _, r := range results {
		fmt.Printf("%-8s: clusters=%d hullArea=%.0f noisePruned=%d\n",
			r.Algorithm, r.Stats.Clusters, r.Stats.TotalArea, r.Stats.NoisePruned)
	}
	fmt.Println()
	return nil
}

func printCaseStudy(s *core.Suite) error {
	fmt.Println("== Table III — case study (6:00-6:09 PM) ==")
	cs, err := s.CaseStudy()
	if err != nil {
		return err
	}
	fmt.Printf("day %d, slots %d-%d\n", cs.Day, cs.StartSlot, cs.StartSlot+len(cs.Slots)-1)
	rows := []string{"Actual ", "Greedy ", "SHATTER"}
	for o := 0; o < len(cs.Slots[0].Actual); o++ {
		fmt.Printf("occupant %d:\n", o)
		for ri, name := range rows {
			fmt.Printf("  %s:", name)
			for _, sl := range cs.Slots {
				var z int
				switch ri {
				case 0:
					z = int(sl.Actual[o])
				case 1:
					z = int(sl.Greedy[o])
				default:
					z = int(sl.SHATTER[o])
				}
				fmt.Printf(" %d", z)
			}
			fmt.Println()
		}
		fmt.Printf("  range  :")
		for _, sl := range cs.Slots {
			if sl.StayMin[o] < 0 {
				fmt.Printf(" []")
			} else {
				fmt.Printf(" [%d-%d]", sl.StayMin[o], sl.StayMax[o])
			}
		}
		fmt.Println()
		fmt.Printf("  trigger:")
		for _, sl := range cs.Slots {
			fmt.Printf(" %v", boolMark(sl.Trigger[o]))
		}
		fmt.Println()
	}
	fmt.Printf("window cost: actual %.2f¢, greedy %.2f¢, SHATTER %.2f¢\n\n",
		cs.ActualCostCents, cs.GreedyCostCents, cs.SHATTERCostCents)
	return nil
}

func printTableIV(s *core.Suite) error {
	fmt.Println("== Table IV — ADM performance vs attacker knowledge ==")
	rows, err := s.TableIV()
	if err != nil {
		return err
	}
	fmt.Printf("%-9s %-13s %-6s %6s %6s %6s %6s\n", "ADM", "Knowledge", "Data", "Acc", "Prec", "Rec", "F1")
	for _, r := range rows {
		fmt.Printf("%-9s %-13s %-6s %6.2f %6.2f %6.2f %6.2f\n",
			r.Algorithm, r.Knowledge, r.Dataset,
			r.Metrics.Accuracy(), r.Metrics.Precision(), r.Metrics.Recall(), r.Metrics.F1())
	}
	fmt.Println()
	return nil
}

func printTableV(s *core.Suite) error {
	fmt.Println("== Table V — attack cost: BIoTA vs Greedy vs SHATTER ==")
	ids := s.ScenarioIDs()
	benign, err := s.BenignCosts()
	if err != nil {
		return err
	}
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprintf("House %s $%.2f", id, benign[id])
	}
	fmt.Printf("benign control cost: %s\n", strings.Join(parts, ", "))
	rows, err := s.TableV()
	if err != nil {
		return err
	}
	headFormat := "%-9s %-12s %-13s" + strings.Repeat(" %10s", len(ids)) + strings.Repeat(" %8s", len(ids)) + "\n"
	head := []any{"Framework", "ADM", "Knowledge"}
	for _, id := range ids {
		head = append(head, id+" ($)")
	}
	for _, id := range ids {
		head = append(head, "det"+id)
	}
	fmt.Printf(headFormat, head...)
	rowFormat := "%-9s %-12s %-13s" + strings.Repeat(" %10.2f", len(ids)) + strings.Repeat(" %8.2f", len(ids)) + "\n"
	for _, r := range rows {
		vals := []any{r.Framework, r.ADM, r.Knowledge}
		for _, id := range ids {
			vals = append(vals, r.CostUSD[id])
		}
		for _, id := range ids {
			vals = append(vals, r.DetectionRate[id])
		}
		fmt.Printf(rowFormat, vals...)
	}
	fmt.Println()
	return nil
}

func printFig10(s *core.Suite) error {
	fmt.Println("== Fig 10 — appliance-triggering contribution ==")
	results, err := s.Fig10()
	if err != nil {
		return err
	}
	for _, r := range results {
		fmt.Printf("House %s: trigger extra $%.2f (+%.1f%% on the non-trigger attack)\n",
			r.House, r.TriggerExtra, r.TriggerPct)
		fmt.Printf("  benign      : %s\n", sparkline(r.Benign))
		fmt.Printf("  w/o trigger : %s\n", sparkline(r.WithoutTrigger))
		fmt.Printf("  with trigger: %s\n", sparkline(r.WithTrigger))
	}
	fmt.Println()
	return nil
}

func printAccess(s *core.Suite, title string, f func() ([]core.AccessRow, error)) error {
	fmt.Println("==", title, "==")
	rows, err := f()
	if err != nil {
		return err
	}
	ids := s.ScenarioIDs()
	for _, r := range rows {
		parts := make([]string, len(ids))
		for i, id := range ids {
			parts[i] = fmt.Sprintf("House %s $%.2f", id, r.ImpactUSD[id])
		}
		fmt.Printf("%-14s %s\n", r.Label, strings.Join(parts, "  "))
	}
	fmt.Println()
	return nil
}

func printFig11(s *core.Suite) error {
	fmt.Println("== Fig 11 — scalability ==")
	a, err := s.Fig11a([]int{4, 6, 8, 10, 12})
	if err != nil {
		return err
	}
	fmt.Println("(a) horizon scaling (joint branch-and-bound):")
	for _, p := range a {
		fmt.Printf("  I=%-3d nodes=%-10d t=%s\n", p.X, p.Nodes, p.Elapsed.Round(time.Microsecond))
	}
	b, err := s.Fig11b([]int{4, 8, 12, 16, 20, 24})
	if err != nil {
		return err
	}
	fmt.Println("(b) zone scaling (windowed DP, lookback 10):")
	for _, p := range b {
		fmt.Printf("  zones=%-3d states=%-8d t=%s\n", p.X, p.Nodes, p.Elapsed.Round(time.Microsecond))
	}
	fmt.Println()
	return nil
}

func printTestbed(s *core.Suite) error {
	fmt.Println("== Section VI — testbed validation ==")
	res, err := s.Testbed()
	if err != nil {
		return err
	}
	fmt.Printf("dynamics identification error: %.2f%% (paper: <2%%)\n", res.FitErrorPct)
	fmt.Printf("benign energy %.1f Wh, attacked %.1f Wh, increase %.1f%% (paper: 78%%)\n",
		res.Benign.EnergyWh, res.Attacked.EnergyWh, res.IncreasePct)
	fmt.Printf("worst occupied-zone excursion: benign %.2f°F, attacked %.2f°F\n\n",
		res.Benign.MaxRiseF, res.Attacked.MaxRiseF)
	return nil
}

func sparkline(xs []float64) string {
	if len(xs) == 0 {
		return ""
	}
	marks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	var b strings.Builder
	for _, x := range xs {
		i := 0
		if hi > lo {
			i = int((x - lo) / (hi - lo) * float64(len(marks)-1))
		}
		b.WriteRune(marks[i])
	}
	return fmt.Sprintf("%s  [min $%.2f max $%.2f]", b.String(), lo, hi)
}

func boolMark(v bool) string {
	if v {
		return "T"
	}
	return "f"
}
