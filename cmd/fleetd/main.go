// Command fleetd runs and administers the sharded fleet service: a
// long-running runtime that multiplexes thousands of streaming smart homes
// over a small worker pool per shard, with an MQTT control plane and a live
// metrics feed.
//
// Serve mode starts an in-process MQTT broker, wires the service's control
// plane to it, optionally admits an initial fleet, and prints metrics
// snapshots until an admin stop request (or SIGINT/SIGTERM) shuts it down:
//
//	fleetd serve [-listen addr] [-shards N] [-workers N] [-max-resident N]
//	             [-checkpoint-dir D] [-state-dir D] [-mqtt-frames] [-retries N]
//	             [-synth N] [-scenarios list] [-stream-days N]
//	             [-days N] [-train N] [-seed S] [-defend] [-attack]
//	             [-metrics-every D] [-print-every D] [-exit-when-idle]
//	             [-result-json F] [-broker-chaos SCHED] [-progress-deadline D]
//
// With -state-dir the service keeps a durable manifest of every admitted
// fleet and admin mutation alongside day-boundary checkpoints; restarting
// the same command after a crash (even kill -9) replays the manifest and
// resumes the fleet from its checkpoints, producing the same per-home
// results as an uninterrupted run.
//
// The admin verbs speak to a running service over its broker:
//
//	fleetd status    -broker addr             live metrics + shard gauges
//	fleetd watch     -broker addr [-n N]      stream N metrics snapshots
//	fleetd add       -broker addr -synth N | -scenarios list
//	                 [-stream-days N] [-seed S] [-defend] [-attack] [-prefix P]
//	fleetd pause     -broker addr -home ID
//	fleetd resume    -broker addr -home ID
//	fleetd remove    -broker addr -home ID
//	fleetd drain     -broker addr -shard I
//	fleetd rehydrate -broker addr -shard I
//	fleetd stop      -broker addr
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/acyd-lab/shatter/internal/core"
	"github.com/acyd-lab/shatter/internal/fleetd"
	"github.com/acyd-lab/shatter/internal/mqtt"
	"github.com/acyd-lab/shatter/internal/stream"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fleetd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: fleetd <serve|status|watch|add|pause|resume|remove|drain|rehydrate|stop> [flags]")
	}
	verb, rest := args[0], args[1:]
	switch verb {
	case "serve":
		return serve(rest)
	case "status", "watch", "add", "pause", "resume", "remove", "drain", "rehydrate", "stop":
		return admin(verb, rest)
	}
	return fmt.Errorf("unknown command %q (want serve, status, watch, add, pause, resume, remove, drain, rehydrate, or stop)", verb)
}

func serve(args []string) error {
	fs := flag.NewFlagSet("fleetd serve", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:0", "broker listen address (the printed address is the control plane)")
	shards := fs.Int("shards", 2, "shard count")
	workers := fs.Int("workers", 0, "workers per shard (0 = one per CPU)")
	maxResident := fs.Int("max-resident", 0, "admission window: live pipelines per shard (0 = default 4096)")
	quantum := fs.Int("quantum-days", 0, "days per scheduling turn (0 = 1)")
	ckptDir := fs.String("checkpoint-dir", "", "persist day-boundary checkpoints in this directory")
	stateDir := fs.String("state-dir", "", "durable state directory: fleet manifest + checkpoints; a restart with the same flags resumes the fleet")
	resultJSON := fs.String("result-json", "", "write per-home fleet results to this file (JSON) at shutdown")
	brokerChaos := fs.String("broker-chaos", "", "broker outage schedule: every=DUR,down=DUR[,count=N][,seed=S]")
	progressDeadline := fs.Duration("progress-deadline", 0, "liveness watchdog: force-fail a home with no day-boundary progress within this window (0 disables)")
	mqttFrames := fs.Bool("mqtt-frames", false, "route every home's sensor frames through the broker too")
	retries := fs.Int("retries", 0, "per-home retry budget (enables supervision when > 0)")
	synth := fs.Int("synth", 0, "admit this many synthetic homes at startup")
	scenarios := fs.String("scenarios", "", "admit these scenarios at startup (registry IDs and/or synth:ZxO[@SEED])")
	streamDays := fs.Int("stream-days", 0, "days each admitted home streams (0 = -days)")
	days := fs.Int("days", 12, "suite trace length in days")
	train := fs.Int("train", 9, "ADM training days (for -defend/-attack fleets)")
	seed := fs.Uint64("seed", 20230427, "dataset seed")
	defend := fs.Bool("defend", false, "attach the online detector to admitted homes")
	attack := fs.Bool("attack", false, "inject a live SHATTER campaign into admitted homes")
	metricsEvery := fs.Duration("metrics-every", 2*time.Second, "metrics publish cadence on fleet/metrics")
	printEvery := fs.Duration("print-every", 5*time.Second, "local metrics print cadence (0 disables)")
	exitWhenIdle := fs.Bool("exit-when-idle", false, "shut down once every admitted home finishes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	broker, err := mqtt.NewBroker(*listen)
	if err != nil {
		return err
	}
	defer broker.Close()
	fmt.Printf("fleetd: broker %s (admin fleet/admin/+, metrics %s)\n", broker.Addr(), fleetd.MetricsTopic)

	cfg := core.SuiteConfig{Days: *days, TrainDays: *train, Seed: *seed, WindowLen: 10, Workers: *workers}
	if err := cfg.Validate(); err != nil {
		return err
	}
	suite, err := core.NewSuite(cfg)
	if err != nil {
		return err
	}
	fcfg := fleetd.Config{
		Shards: *shards,
		Shard: fleetd.ShardOptions{
			Workers:          *workers,
			MaxResident:      *maxResident,
			QuantumDays:      *quantum,
			CheckpointDir:    *ckptDir,
			Recover:          *retries > 0 || *ckptDir != "" || *stateDir != "",
			MaxRetries:       *retries,
			ProgressDeadline: *progressDeadline,
		},
		Broker:       broker.Addr(),
		StateDir:     *stateDir,
		MetricsEvery: *metricsEvery,
	}
	if *mqttFrames {
		fcfg.Shard.Broker = broker.Addr()
		// Home pipes ride broker restarts via session resume.
		fcfg.Shard.Dial = mqtt.DialOptions{Redial: true}
	}
	svc, err := core.NewFleetService(suite, fcfg)
	if err != nil {
		return err
	}
	persist := *ckptDir != "" || *stateDir != ""
	defer svc.Close(persist)

	if resumedDone, resumedLive := svc.Resumed(); resumedDone+resumedLive > 0 {
		// The manifest already names the fleet; admitting the startup fleet
		// again would double every home.
		fmt.Printf("fleetd: resuming fleet from manifest (%d finished, %d live)\n", resumedDone, resumedLive)
	} else if *synth > 0 || *scenarios != "" {
		req := fleetd.AddRequest{
			Synth: *synth, Seed: *seed, Days: *streamDays,
			Defend: *defend, Attack: *attack,
		}
		for _, entry := range strings.Split(*scenarios, ",") {
			if entry = strings.TrimSpace(entry); entry != "" {
				req.Scenarios = append(req.Scenarios, entry)
			}
		}
		n, err := svc.AddSpec(req)
		if err != nil {
			return err
		}
		fmt.Printf("fleetd: admitted %d homes\n", n)
	}

	if *brokerChaos != "" {
		sched, err := parseOutageSchedule(*brokerChaos)
		if err != nil {
			return err
		}
		outages := stream.StartBrokerOutages(broker, sched, nil)
		defer outages.Stop()
	}

	idle := make(chan struct{})
	if *exitWhenIdle {
		go func() {
			svc.WaitIdle()
			close(idle)
		}()
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	var tick <-chan time.Time
	if *printEvery > 0 {
		t := time.NewTicker(*printEvery)
		defer t.Stop()
		tick = t.C
	}
	finish := func() error {
		printSnapshot(svc.Snapshot())
		return writeFleetResult(*resultJSON, svc)
	}
	for {
		select {
		case <-tick:
			printSnapshot(svc.Snapshot())
		case <-idle:
			fmt.Println("fleetd: fleet idle, shutting down")
			return finish()
		case s := <-sig:
			fmt.Printf("fleetd: %v, shutting down (persist=%v)\n", s, persist)
			return finish()
		case <-svc.Done():
			fmt.Println("fleetd: stop requested, shutting down")
			return finish()
		}
	}
}

// parseOutageSchedule parses the -broker-chaos grammar:
// every=DUR,down=DUR[,count=N][,seed=S].
func parseOutageSchedule(s string) (stream.OutageSchedule, error) {
	var sched stream.OutageSchedule
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return sched, fmt.Errorf("broker-chaos: %q is not key=value", part)
		}
		var err error
		switch key {
		case "every":
			sched.Every, err = time.ParseDuration(val)
		case "down":
			sched.Down, err = time.ParseDuration(val)
		case "count":
			sched.Count, err = strconv.Atoi(val)
		case "seed":
			sched.Seed, err = strconv.ParseUint(val, 10, 64)
		default:
			return sched, fmt.Errorf("broker-chaos: unknown key %q", key)
		}
		if err != nil {
			return sched, fmt.Errorf("broker-chaos: %s: %w", key, err)
		}
	}
	if sched.Every <= 0 || sched.Down <= 0 {
		return sched, fmt.Errorf("broker-chaos: every and down are required (got %q)", s)
	}
	return sched, nil
}

// writeFleetResult dumps the per-home results as JSON — stream-time outcomes
// only, no wall-clock fields, so a resumed run's file is byte-comparable to
// an uninterrupted run's.
func writeFleetResult(path string, svc *fleetd.Service) error {
	if path == "" {
		return nil
	}
	fr := svc.Result()
	data, err := json.MarshalIndent(fr.Homes, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// admin runs one control-plane verb against a running service.
func admin(verb string, args []string) error {
	fs := flag.NewFlagSet("fleetd "+verb, flag.ContinueOnError)
	brokerAddr := fs.String("broker", "", "broker address of the running service (required)")
	home := fs.String("home", "", "home ID (pause/resume/remove)")
	shard := fs.Int("shard", -1, "shard index (drain/rehydrate)")
	synth := fs.Int("synth", 0, "add: synthetic home count")
	scenarios := fs.String("scenarios", "", "add: scenario list (registry IDs and/or synth:ZxO[@SEED])")
	streamDays := fs.Int("stream-days", 0, "add: days per home (0 = service default)")
	seed := fs.Uint64("seed", 0, "add: dataset seed (0 = service default)")
	defend := fs.Bool("defend", false, "add: attach the online detector")
	attack := fs.Bool("attack", false, "add: inject a live SHATTER campaign")
	prefix := fs.String("prefix", "", "add: ID prefix so repeated adds stay unique")
	count := fs.Int("n", 3, "watch: snapshots to print before exiting")
	timeout := fs.Duration("timeout", 30*time.Second, "request timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *brokerAddr == "" {
		return fmt.Errorf("fleetd %s: -broker is required", verb)
	}
	a, err := fleetd.NewAdmin(*brokerAddr, mqtt.DialOptions{})
	if err != nil {
		return err
	}
	defer a.Close()
	a.Timeout = *timeout
	needHome := func() error {
		if *home == "" {
			return fmt.Errorf("fleetd %s: -home is required", verb)
		}
		return nil
	}
	switch verb {
	case "status":
		snap, err := a.Status()
		if err != nil {
			return err
		}
		printSnapshot(snap)
	case "watch":
		feed, err := a.Watch()
		if err != nil {
			return err
		}
		for i := 0; i < *count; i++ {
			snap, ok := <-feed
			if !ok {
				return fmt.Errorf("fleetd watch: metrics feed closed")
			}
			printSnapshot(snap)
		}
	case "add":
		req := fleetd.AddRequest{
			Synth: *synth, Seed: *seed, Days: *streamDays,
			Defend: *defend, Attack: *attack, Prefix: *prefix,
		}
		for _, entry := range strings.Split(*scenarios, ",") {
			if entry = strings.TrimSpace(entry); entry != "" {
				req.Scenarios = append(req.Scenarios, entry)
			}
		}
		n, err := a.Add(req)
		if err != nil {
			return err
		}
		fmt.Printf("added %d homes\n", n)
	case "pause":
		if err := needHome(); err != nil {
			return err
		}
		if err := a.Pause(*home); err != nil {
			return err
		}
		fmt.Printf("paused %s\n", *home)
	case "resume":
		if err := needHome(); err != nil {
			return err
		}
		if err := a.Resume(*home); err != nil {
			return err
		}
		fmt.Printf("resumed %s\n", *home)
	case "remove":
		if err := needHome(); err != nil {
			return err
		}
		if err := a.Remove(*home); err != nil {
			return err
		}
		fmt.Printf("removed %s\n", *home)
	case "drain":
		if err := a.Drain(*shard); err != nil {
			return err
		}
		fmt.Printf("drained shard %d\n", *shard)
	case "rehydrate":
		if err := a.Rehydrate(*shard); err != nil {
			return err
		}
		fmt.Printf("rehydrated shard %d\n", *shard)
	case "stop":
		if err := a.Stop(); err != nil {
			return err
		}
		fmt.Println("stop acknowledged")
	}
	return nil
}

// printSnapshot renders one metrics document for humans.
func printSnapshot(s fleetd.Snapshot) {
	up := time.Duration(s.UptimeNS).Round(time.Millisecond)
	fmt.Printf("[%s] homes %d active / %d done / %d failed / %d removed of %d; %d days, %d slots\n",
		up, s.HomesActive, s.HomesCompleted, s.HomesFailed, s.HomesRemoved, s.HomesAdded, s.Days, s.Slots)
	fmt.Printf("  throughput: %.1f homes/s, %.1f days/s, %.0f events/s; heap %.1f MiB, %d goroutines\n",
		s.HomesPerSec, s.DaysPerSec, s.EventsPerSec, float64(s.HeapAllocBytes)/(1<<20), s.Goroutines)
	if s.Verdicts > 0 {
		fmt.Printf("  detection: %d verdicts (%d anomalous), latency mean %.1f / max %d slots\n",
			s.Verdicts, s.Anomalies, s.DetectionLatencyMeanSlots, s.DetectionLatencyMaxSlots)
	}
	if s.Retries > 0 || s.Restores > 0 || s.Checkpoints > 0 || s.WatchdogTrips > 0 {
		fmt.Printf("  resilience: %d retries, %d restores, %d checkpoints, %d watchdog trips\n",
			s.Retries, s.Restores, s.Checkpoints, s.WatchdogTrips)
	}
	for _, sh := range s.Shards {
		fmt.Printf("  shard %d: %d pending, %d resident (%d ready, %d running, %d paused), %d done, %d failed, ~%.1f MiB%s\n",
			sh.Shard, sh.Pending, sh.Resident, sh.Ready, sh.Running, sh.Paused, sh.Done, sh.Failed,
			float64(sh.ApproxHeapBytes)/(1<<20), drainedMark(sh.Drained))
	}
}

func drainedMark(d bool) string {
	if d {
		return " [drained]"
	}
	return ""
}
