// Command testbedsim runs the Section VI prototype-testbed validation:
// dynamics identification, the benign demonstration hour, and the MITM
// attacked hour, printing the paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/acyd-lab/shatter/internal/testbed"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "testbedsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("testbedsim", flag.ContinueOnError)
	ambient := fs.Float64("ambient", 72, "lab ambient temperature (°F)")
	setpoint := fs.Float64("setpoint", 75, "zone setpoint (°F)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := testbed.DefaultConfig()
	cfg.AmbientF = *ambient
	cfg.SetpointF = *setpoint

	res, err := testbed.Validate(cfg)
	if err != nil {
		return err
	}
	fmt.Println("SHATTER prototype testbed validation (scaled 1/24, 5W LEDs, 1.4 CFM fans)")
	fmt.Printf("dynamics identification error: %.2f%%   (paper: <2%%)\n", res.FitErrorPct)
	fmt.Printf("benign hour   : %.1f Wh, worst occupied excursion %.2f °F\n",
		res.Benign.EnergyWh, res.Benign.MaxRiseF)
	fmt.Printf("attacked hour : %.1f Wh, worst occupied excursion %.2f °F\n",
		res.Attacked.EnergyWh, res.Attacked.MaxRiseF)
	fmt.Printf("energy increase: +%.1f%%   (paper: +78%%)\n", res.IncreasePct)
	return nil
}
