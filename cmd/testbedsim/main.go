// Command testbedsim runs the Section VI prototype-testbed validation:
// dynamics identification, the benign demonstration hour, and the MITM
// attacked hour, printing the paper-vs-measured comparison. With -house it
// scales any scenario-registry world down to the tabletop rig instead of
// the paper's canonical house A.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/acyd-lab/shatter/internal/scenario"
	"github.com/acyd-lab/shatter/internal/testbed"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "testbedsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("testbedsim", flag.ContinueOnError)
	ambient := fs.Float64("ambient", 72, "lab ambient temperature (°F)")
	setpoint := fs.Float64("setpoint", 75, "zone setpoint (°F)")
	houseID := fs.String("house", "A", "scenario ID to scale down (see the registry: A, B, studio, ...)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := testbed.DefaultConfig()
	cfg.AmbientF = *ambient
	cfg.SetpointF = *setpoint

	sp, ok := scenario.Get(*houseID)
	if !ok {
		sp, ok = scenario.Get(strings.ToUpper(*houseID))
	}
	if !ok {
		return fmt.Errorf("unknown scenario %q (registered: %s)", *houseID, strings.Join(scenario.IDs(), ", "))
	}
	house, err := sp.Build()
	if err != nil {
		return err
	}

	res, err := testbed.ValidateHouse(cfg, house)
	if err != nil {
		return err
	}
	fmt.Printf("SHATTER prototype testbed validation (house %s: %d zones scaled 1/%.0f, %gW LEDs, %.1f CFM fans)\n",
		house.Name, len(house.Zones)-1, cfg.Scale, cfg.LEDPowerW, cfg.FanCFM)
	fmt.Printf("dynamics identification error: %.2f%%   (paper: <2%%)\n", res.FitErrorPct)
	fmt.Printf("benign hour   : %.1f Wh, worst occupied excursion %.2f °F\n",
		res.Benign.EnergyWh, res.Benign.MaxRiseF)
	fmt.Printf("attacked hour : %.1f Wh, worst occupied excursion %.2f °F\n",
		res.Attacked.EnergyWh, res.Attacked.MaxRiseF)
	fmt.Printf("energy increase: +%.1f%%   (paper: +78%%)\n", res.IncreasePct)
	return nil
}
