// Command shatter is the framework's CLI: generate datasets, train and
// evaluate ADMs, and synthesise stealthy attack schedules. The -house flag
// accepts any registered scenario ID (the paper's "A"/"B" plus the builtin
// archetypes and anything registered by the embedding application).
//
// Subcommands:
//
//	generate  -house A -days 30 -seed 1 -out trace.csv
//	train     -house studio -days 30 -seed 1 -adm dbscan|kmeans
//	attack    -house shared8 -days 30 -seed 1 -adm kmeans -strategy shatter|greedy|biota [-trigger]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	shatter "github.com/acyd-lab/shatter"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "shatter:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: shatter <generate|train|attack> [flags]")
	}
	switch args[0] {
	case "generate":
		return cmdGenerate(args[1:])
	case "train":
		return cmdTrain(args[1:])
	case "attack":
		return cmdAttack(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

type common struct {
	house *shatter.House
	trace *shatter.Trace
}

func load(fs *flag.FlagSet, args []string) (*common, *flag.FlagSet, error) {
	houseName := fs.String("house", "A", "scenario ID (see the registry: A, B, studio, ...)")
	days := fs.Int("days", 30, "trace length (days)")
	seed := fs.Uint64("seed", 1, "dataset seed")
	if err := fs.Parse(args); err != nil {
		return nil, nil, err
	}
	sp, ok := shatter.GetScenario(*houseName)
	if !ok {
		// Compat: NewHouse accepted lowercase "a"/"b".
		sp, ok = shatter.GetScenario(strings.ToUpper(*houseName))
	}
	if !ok {
		return nil, nil, fmt.Errorf("unknown scenario %q (registered: %s)",
			*houseName, strings.Join(shatter.ScenarioIDs(), ", "))
	}
	tr, err := sp.Generate(*days, *seed)
	if err != nil {
		return nil, nil, err
	}
	return &common{house: tr.House, trace: tr}, fs, nil
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ContinueOnError)
	out := fs.String("out", "", "CSV output path (default stdout)")
	c, _, err := load(fs, args)
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return c.trace.WriteCSV(w)
}

func admConfig(name string, trainDays int) (shatter.ADMConfig, error) {
	switch name {
	case "dbscan":
		cfg := shatter.DefaultADMConfig(shatter.DBSCAN)
		cfg.MinPts = max(3, trainDays/3)
		cfg.Eps = 25
		return cfg, nil
	case "kmeans":
		return shatter.DefaultADMConfig(shatter.KMeans), nil
	default:
		return shatter.ADMConfig{}, fmt.Errorf("unknown ADM %q (want dbscan or kmeans)", name)
	}
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ContinueOnError)
	admName := fs.String("adm", "dbscan", "ADM backend: dbscan or kmeans")
	c, _, err := load(fs, args)
	if err != nil {
		return err
	}
	cfg, err := admConfig(*admName, c.trace.NumDays())
	if err != nil {
		return err
	}
	model, err := shatter.TrainADM(c.trace, cfg)
	if err != nil {
		return err
	}
	st := model.Stats()
	fmt.Printf("trained %v ADM on %d days of house %s\n", cfg.Algorithm, c.trace.NumDays(), c.house.Name)
	fmt.Printf("clusters=%d hullArea=%.0f noisePruned=%d\n", st.Clusters, st.TotalArea, st.NoisePruned)
	for o := range c.house.Occupants {
		eps := c.trace.Episodes(o)
		flagged := 0
		for _, e := range eps {
			if model.EpisodeAnomalous(e) {
				flagged++
			}
		}
		fmt.Printf("occupant %d: %d episodes, %d flagged on training data (FP surface)\n", o, len(eps), flagged)
	}
	return nil
}

func cmdAttack(args []string) error {
	fs := flag.NewFlagSet("attack", flag.ContinueOnError)
	admName := fs.String("adm", "kmeans", "attacker/defender ADM backend")
	strategy := fs.String("strategy", "shatter", "shatter, greedy, or biota")
	trigger := fs.Bool("trigger", false, "run the appliance-triggering stage")
	window := fs.Int("window", 10, "optimisation horizon I")
	c, _, err := load(fs, args)
	if err != nil {
		return err
	}
	trainDays := c.trace.NumDays() * 4 / 5
	if trainDays < 1 {
		trainDays = 1
	}
	train, err := c.trace.SubTrace(0, trainDays)
	if err != nil {
		return err
	}
	cfg, err := admConfig(*admName, trainDays)
	if err != nil {
		return err
	}
	model, err := shatter.TrainADM(train, cfg)
	if err != nil {
		return err
	}
	params, pricing := shatter.DefaultHVACParams(), shatter.DefaultPricing()
	cap := shatter.FullCapability(c.house)
	planner := shatter.NewPlanner(c.trace, model, params, pricing, cap, *window)
	var plan *shatter.Plan
	switch *strategy {
	case "shatter":
		plan, err = planner.PlanSHATTER()
	case "greedy":
		plan, err = planner.PlanGreedy()
	case "biota":
		plan, err = planner.PlanBIoTA()
	default:
		return fmt.Errorf("unknown strategy %q", *strategy)
	}
	if err != nil {
		return err
	}
	if *trigger {
		n := shatter.TriggerAppliances(c.trace, plan, model, cap)
		fmt.Printf("triggered %d appliance-minutes\n", n)
	}
	ctrl := shatter.NewSHATTERController(params)
	imp, err := shatter.EvaluateImpact(c.trace, plan, model, ctrl, params, pricing, shatter.EvalOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("strategy=%s adm=%v injectedSlots=%d\n", plan.Strategy, cfg.Algorithm, plan.InjectedSlots(c.trace))
	fmt.Printf("benign   $%.2f\n", imp.Benign.TotalCostUSD)
	fmt.Printf("attacked $%.2f (+$%.2f)\n", imp.Attacked.TotalCostUSD, imp.ExtraCostUSD)
	fmt.Printf("detection rate %.1f%% over %d detected days\n", imp.DetectionRate*100, imp.DetectedDays)
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
